package core

import (
	"context"
	"errors"
	"testing"

	"janus/internal/compose"
	"janus/internal/policy"
	"janus/internal/topo"
)

// deltaSetup builds a four-switch fabric carrying four independent
// policies, each with a dedicated src/dst endpoint pair, so single-policy
// events have a provably one-policy footprint.
func deltaSetup(t *testing.T) (*topo.Topology, *compose.Graph, map[string]topo.NodeID) {
	t.Helper()
	tp := topo.NewTopology("delta")
	sw := map[string]topo.NodeID{}
	for _, n := range []string{"a", "b", "c", "d"} {
		sw[n] = tp.AddSwitch(n)
	}
	link := func(x, y string) {
		t.Helper()
		if err := tp.AddLink(sw[x], sw[y], 100); err != nil {
			t.Fatal(err)
		}
	}
	link("a", "b")
	link("b", "c")
	link("c", "d")
	link("a", "c")
	link("b", "d")
	srcAt := []string{"a", "b", "a", "b"}
	dstAt := []string{"c", "d", "d", "c"}
	graphs := make([]*policy.Graph, 4)
	for i := 0; i < 4; i++ {
		src, dst := deltaName("src", i), deltaName("dst", i)
		sl, dl := deltaName("S", i), deltaName("D", i)
		if err := tp.AddEndpoint(src, sw[srcAt[i]], sl); err != nil {
			t.Fatal(err)
		}
		if err := tp.AddEndpoint(dst, sw[dstAt[i]], dl); err != nil {
			t.Fatal(err)
		}
		g := policy.NewGraph(deltaName("g", i))
		g.AddEdge(policy.Edge{Src: sl, Dst: dl, Default: true,
			QoS: policy.QoS{BandwidthMbps: 10}})
		graphs[i] = g
	}
	cg, err := compose.New(nil).Compose(graphs...)
	if err != nil {
		t.Fatal(err)
	}
	return tp, cg, sw
}

func deltaName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func deltaPolicyID(t *testing.T, cg *compose.Graph, i int) int {
	t.Helper()
	p, ok := cg.Lookup(deltaName("S", i), deltaName("D", i))
	if !ok {
		t.Fatalf("policy %d not found in composed graph", i)
	}
	return p.ID
}

func TestBuildDepIndexMappings(t *testing.T) {
	tp, cg, _ := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildDepIndex(tp, cg, res)
	if ix.Period() != 0 {
		t.Errorf("Period() = %d, want 0", ix.Period())
	}
	if ix.ActivePolicies() != 4 {
		t.Errorf("ActivePolicies() = %d, want 4", ix.ActivePolicies())
	}
	// Each dedicated endpoint maps to exactly its own policy.
	for i := 0; i < 4; i++ {
		pid := deltaPolicyID(t, cg, i)
		got := map[int]bool{}
		ix.AffectedByEndpoint(deltaName("src", i), got)
		if len(got) != 1 || !got[pid] {
			t.Errorf("AffectedByEndpoint(src%d) = %v, want {%d}", i, got, pid)
		}
	}
	// Every link an assignment traverses maps back to its policy, queried
	// in both directions.
	for _, a := range res.Assignments {
		for _, l := range a.Path.Links() {
			got := map[int]bool{}
			ix.AffectedByLink(l[0], l[1], got)
			if !got[a.Policy] {
				t.Errorf("AffectedByLink(%d,%d) missing policy %d", l[0], l[1], a.Policy)
			}
			rev := map[int]bool{}
			ix.AffectedByLink(l[1], l[0], rev)
			if !rev[a.Policy] {
				t.Errorf("AffectedByLink(%d,%d) (reversed) missing policy %d", l[1], l[0], a.Policy)
			}
		}
		for _, n := range a.Path.Nodes {
			got := map[int]bool{}
			ix.AffectedByNode(n, got)
			if !got[a.Policy] {
				t.Errorf("AffectedByNode(%d) missing policy %d", n, a.Policy)
			}
		}
	}
	if got := map[int]bool{}; func() bool { ix.AffectedUnsatisfied(got); return len(got) != 0 }() {
		t.Errorf("AffectedUnsatisfied = %v on a fully satisfied result", got)
	}
}

func TestDeltaMatchesFullAfterMove(t *testing.T) {
	tp, cg, sw := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	prev, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.MoveEndpoint("src0", sw["d"]); err != nil {
		t.Fatal(err)
	}
	pid0 := deltaPolicyID(t, cg, 0)
	delta, err := c.DeltaReconfigureContext(context.Background(), prev,
		DeltaRequest{Period: 0, Affected: map[int]bool{pid0: true}})
	if err != nil {
		t.Fatalf("delta solve: %v", err)
	}
	full, err := c.ReconfigureAt(prev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta.SatisfiedCount() != full.SatisfiedCount() {
		t.Errorf("delta satisfied %d, full satisfied %d", delta.SatisfiedCount(), full.SatisfiedCount())
	}
	if delta.Delta == nil {
		t.Fatal("delta result missing DeltaStats")
	}
	if delta.Delta.Affected != 1 || delta.Delta.Frozen != 3 {
		t.Errorf("DeltaStats = %+v, want Affected=1 Frozen=3", *delta.Delta)
	}
	// The moved pair's new path starts at the new attach switch.
	if a, ok := delta.AssignmentFor(pid0, "src0", "dst0"); !ok {
		t.Error("moved pair lost its assignment")
	} else if a.Path.Nodes[0] != sw["d"] {
		t.Errorf("moved pair's path starts at %d, want new attach %d", a.Path.Nodes[0], sw["d"])
	}
	// Every unaffected policy's assignments are frozen verbatim.
	for i := 1; i < 4; i++ {
		pid := deltaPolicyID(t, cg, i)
		src, dst := deltaName("src", i), deltaName("dst", i)
		before, ok1 := prev.AssignmentFor(pid, src, dst)
		after, ok2 := delta.AssignmentFor(pid, src, dst)
		if !ok1 || !ok2 || !before.Path.Equal(after.Path) {
			t.Errorf("policy %d should be frozen: before=%v after=%v", pid, before.Path, after.Path)
		}
	}
	// The merged link report never oversubscribes a link.
	for _, l := range delta.Links {
		if l.Reserved > l.Capacity+1e-6 {
			t.Errorf("link %d->%d oversubscribed: %.1f reserved of %.1f", l.From, l.To, l.Reserved, l.Capacity)
		}
	}
}

func TestDeltaWidensStaleFrozen(t *testing.T) {
	tp, cg, sw := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	prev, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	// Both src0 and src1 move, but the caller only reports policy 0 as
	// affected (a failed earlier event can leave prev out of sync with the
	// topology like this). freezeValid must notice policy 1's paths no
	// longer start at src1's attach switch and widen it into the sub-model.
	if err := tp.MoveEndpoint("src0", sw["d"]); err != nil {
		t.Fatal(err)
	}
	if err := tp.MoveEndpoint("src1", sw["c"]); err != nil {
		t.Fatal(err)
	}
	pid0, pid1 := deltaPolicyID(t, cg, 0), deltaPolicyID(t, cg, 1)
	res, err := c.DeltaReconfigureContext(context.Background(), prev,
		DeltaRequest{Period: 0, Affected: map[int]bool{pid0: true}})
	if err != nil {
		t.Fatalf("delta solve: %v", err)
	}
	if res.Delta.Affected != 2 || res.Delta.Frozen != 2 {
		t.Errorf("DeltaStats = %+v, want the stale policy widened (Affected=2 Frozen=2)", *res.Delta)
	}
	if a, ok := res.AssignmentFor(pid1, "src1", "dst1"); !ok {
		t.Error("widened policy lost its assignment")
	} else if a.Path.Nodes[0] != sw["c"] {
		t.Errorf("widened policy's path starts at %d, want new attach %d", a.Path.Nodes[0], sw["c"])
	}
}

func TestDeltaShareGateFallsBack(t *testing.T) {
	tp, cg, _ := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	prev, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	affected := map[int]bool{}
	for i := 0; i < 4; i++ {
		affected[deltaPolicyID(t, cg, i)] = true
	}
	_, err = c.DeltaReconfigureContext(context.Background(), prev,
		DeltaRequest{Period: 0, Affected: affected})
	if !errors.Is(err, ErrDeltaFallback) {
		t.Fatalf("all-policies delta should trip the affected-share gate, got %v", err)
	}
}

func TestDeltaNilPrevFallsBack(t *testing.T) {
	tp, cg, _ := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	_, err := c.DeltaReconfigureContext(context.Background(), nil, DeltaRequest{})
	if !errors.Is(err, ErrDeltaFallback) {
		t.Fatalf("nil prev should fall back, got %v", err)
	}
}

func TestDeltaEmptyAffectedFreezesEverything(t *testing.T) {
	tp, cg, _ := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	prev, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.DeltaReconfigureContext(context.Background(), prev,
		DeltaRequest{Period: 0, Affected: map[int]bool{}})
	if err != nil {
		t.Fatalf("empty-affected delta: %v", err)
	}
	if res.Delta == nil || res.Delta.Affected != 0 || res.Delta.Frozen != 4 {
		t.Fatalf("DeltaStats = %+v, want Affected=0 Frozen=4", res.Delta)
	}
	if res.SatisfiedCount() != prev.SatisfiedCount() {
		t.Errorf("satisfied drifted %d -> %d with nothing affected", prev.SatisfiedCount(), res.SatisfiedCount())
	}
	if len(res.Assignments) != len(prev.Assignments) {
		t.Errorf("assignment count drifted %d -> %d", len(prev.Assignments), len(res.Assignments))
	}
}

func TestDeltaCancelledContextIsRealError(t *testing.T) {
	tp, cg, sw := deltaSetup(t)
	c := mustNew(t, tp, cg, Config{})
	prev, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.MoveEndpoint("src0", sw["d"]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.DeltaReconfigureContext(ctx, prev,
		DeltaRequest{Period: 0, Affected: map[int]bool{deltaPolicyID(t, cg, 0): true}})
	if err == nil {
		t.Fatal("cancelled delta solve returned nil error")
	}
	if errors.Is(err, ErrDeltaFallback) {
		t.Fatalf("cancellation must not masquerade as a fallback: %v", err)
	}
}
