package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"janus/internal/compose"
	"janus/internal/milp"
	"janus/internal/policy"
	"janus/internal/topo"
)

// ladderSetup builds a two-switch line with one trivially satisfiable
// policy.
func ladderSetup(t *testing.T) *Configurator {
	t.Helper()
	tp := topo.NewTopology("ladder")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	if err := tp.AddLink(a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("c1", a, "C"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("s1", b, "S"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "C", Dst: "S", QoS: policy.QoS{BandwidthMbps: 10}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := New(tp, cg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return conf
}

func TestConfigureTierFull(t *testing.T) {
	conf := ladderSetup(t)
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierFull && res.Tier != TierIncumbent {
		t.Errorf("trivial solve served at tier %s, want full or incumbent", res.Tier)
	}
	if res.Tier.Degraded() {
		t.Errorf("tier %s should not count as degraded", res.Tier)
	}
}

func TestConfigureContextCancelled(t *testing.T) {
	conf := ladderSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := conf.ConfigureContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled configure should propagate context.Canceled, got %v", err)
	}
}

func TestKeepPreviousServesPriorConfig(t *testing.T) {
	conf := ladderSetup(t)
	prev, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Assignments) == 0 {
		t.Fatal("setup policy should be configured")
	}
	m, err := conf.buildModel(0, prev.Assignments, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := conf.keepPrevious(prev, 5, m, &milp.Solution{Status: milp.Limit, Nodes: 3}, time.Now())
	if res.Tier != TierKeepPrevious {
		t.Errorf("tier = %s, want keep-previous", res.Tier)
	}
	if !res.Tier.Degraded() {
		t.Error("keep-previous must count as degraded")
	}
	if res.Period != 5 {
		t.Errorf("period = %d, want 5", res.Period)
	}
	if res.Status != milp.Limit {
		t.Errorf("status = %s, want limit (the failed solve's)", res.Status)
	}
	if len(res.Assignments) != len(prev.Assignments) {
		t.Fatalf("assignments not kept: %d vs %d", len(res.Assignments), len(prev.Assignments))
	}
	if CountPathChanges(prev, res) != 0 {
		t.Error("keep-previous must cause zero path changes")
	}
	// The copy must be isolated: mutating the served result cannot corrupt
	// the previous one.
	for pid := range res.Configured {
		res.Configured[pid] = false
	}
	if prev.SatisfiedCount() == 0 {
		t.Error("mutating the keep-previous result leaked into prev")
	}
}

func TestDegradationTierStrings(t *testing.T) {
	want := map[DegradationTier]string{
		TierFull:         "full",
		TierIncumbent:    "incumbent",
		TierLPRound:      "lp-round",
		TierKeepPrevious: "keep-previous",
		TierNone:         "none",
	}
	for tier, s := range want {
		if tier.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(tier), tier.String(), s)
		}
	}
}
