package core

import (
	"fmt"
	"time"

	"janus/internal/lp"
	"janus/internal/milp"
)

// Configure solves one time period's configuration from scratch.
// The period is an hour of day (0–23); static policy sets ignore it.
func (c *Configurator) Configure(period int) (*Result, error) {
	return c.solvePeriod(period, nil, nil, nil)
}

// Reconfigure re-solves period prev.Period after environment changes
// (endpoint mobility, membership changes, policy graph churn), warm-started
// from the previous basis and penalizing path changes against the previous
// assignments (§5.4). Use CountPathChanges(prev, next) to measure the
// disruption.
func (c *Configurator) Reconfigure(prev *Result) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: Reconfigure requires a previous result")
	}
	return c.ReconfigureAt(prev, prev.Period)
}

// ReconfigureAt re-solves for the given period (which may differ from the
// previous result's, e.g. at a temporal boundary), warm-started from the
// previous basis and penalizing path changes against the previous
// assignments.
func (c *Configurator) ReconfigureAt(prev *Result, period int) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: ReconfigureAt requires a previous result")
	}
	var warm *lp.Basis
	if prev.basis != nil {
		warm = prev.basis
	}
	return c.solvePeriod(period, prev.Assignments, warm, nil)
}

// solvePeriod builds and solves the period model.
func (c *Configurator) solvePeriod(period int, prevAssign []Assignment, warm *lp.Basis, over bwOverride) (*Result, error) {
	start := time.Now()
	m, err := c.buildModel(period, prevAssign, over)
	if err != nil {
		return nil, err
	}
	solver := milp.NewSolver(m.prob, m.integers)
	// Branch on group decisions (I_i) before individual path indicators:
	// fixing a policy in or out prunes the tree far faster.
	prio := make(map[int]int, len(m.iVar))
	for _, iv := range m.iVar {
		prio[iv] = 1
	}
	sol, err := solver.Solve(milp.Options{
		MaxNodes:       c.cfg.MaxNodes,
		TimeLimit:      c.cfg.TimeLimit,
		RelGap:         c.cfg.RelGap,
		Branching:      c.cfg.Branching,
		StallNodes:     c.cfg.StallNodes,
		BranchPriority: prio,
		MIPStart:       greedyStart(c, m, prevAssign),
		WarmStart:      warm,
	})
	if err != nil {
		return nil, fmt.Errorf("core: solving period %d: %w", period, err)
	}
	res := &Result{
		Period:     period,
		Configured: make(map[int]bool, len(m.pids)),
		SlackUsed:  make(map[int]bool),
		Status:     sol.Status,
		Stats: Stats{
			Variables:    m.prob.NumVariables(),
			Constraints:  m.prob.NumConstraints(),
			Nodes:        sol.Nodes,
			LPIterations: sol.LPIterations,
			Duration:     time.Since(start),
		},
		basis: sol.RootBasis,
	}
	if sol.Status == milp.Infeasible || sol.Status == milp.Unbounded || sol.X == nil {
		// The model always admits the all-zero solution, so this indicates
		// a limit hit before any incumbent was found.
		for _, pid := range m.pids {
			res.Configured[pid] = false
		}
		return res, nil
	}
	res.Objective = sol.Objective
	for _, pid := range m.pids {
		res.Configured[pid] = sol.X[m.iVar[pid]] > 0.5
	}
	for pid, xi := range m.xiVar {
		res.SlackUsed[pid] = sol.X[xi] > 0.5
	}
	for _, pv := range m.pvars {
		if sol.X[pv.v] > 0.5 {
			res.Assignments = append(res.Assignments, Assignment{
				Policy:  pv.pid,
				EdgeIdx: pv.edgeIdx,
				Role:    pv.role,
				Src:     pv.src,
				Dst:     pv.dst,
				Path:    pv.path,
				BW:      pv.bw,
			})
		}
	}
	// Link report: reservations from the integer solution, shadow prices
	// from the root relaxation (§5.6 sensitivity analysis).
	reserved := map[[2]int64]float64{}
	for _, a := range res.Assignments {
		for _, l := range a.Path.Links() {
			reserved[[2]int64{int64(l[0]), int64(l[1])}] += a.BW
		}
	}
	for l, row := range m.linkRow {
		capacity, _ := c.topo.LinkCapacity(l[0], l[1])
		use := LinkUse{
			From: l[0], To: l[1],
			Capacity: capacity,
			Reserved: reserved[[2]int64{int64(l[0]), int64(l[1])}],
		}
		if sol.RootDuals != nil && row < len(sol.RootDuals) {
			use.ShadowPrice = sol.RootDuals[row]
		}
		res.Links = append(res.Links, use)
	}
	return res, nil
}
