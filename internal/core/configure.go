package core

import (
	"context"
	"fmt"
	"time"

	"janus/internal/lp"
	"janus/internal/milp"
)

// Configure solves one time period's configuration from scratch.
// The period is an hour of day (0–23); static policy sets ignore it.
func (c *Configurator) Configure(period int) (*Result, error) {
	return c.ConfigureContext(context.Background(), period)
}

// ConfigureContext is Configure with a cancellation context: cancelling it
// aborts the branch-and-bound search between node solves (an HTTP client
// abandoning /configure should not leave the solver running).
func (c *Configurator) ConfigureContext(ctx context.Context, period int) (*Result, error) {
	return c.solvePeriod(ctx, period, nil, nil)
}

// Reconfigure re-solves period prev.Period after environment changes
// (endpoint mobility, membership changes, policy graph churn), warm-started
// from the previous basis and penalizing path changes against the previous
// assignments (§5.4). Use CountPathChanges(prev, next) to measure the
// disruption.
func (c *Configurator) Reconfigure(prev *Result) (*Result, error) {
	return c.ReconfigureContext(context.Background(), prev)
}

// ReconfigureContext is Reconfigure with a cancellation context.
func (c *Configurator) ReconfigureContext(ctx context.Context, prev *Result) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: Reconfigure requires a previous result")
	}
	return c.ReconfigureAtContext(ctx, prev, prev.Period)
}

// ReconfigureAt re-solves for the given period (which may differ from the
// previous result's, e.g. at a temporal boundary), warm-started from the
// previous basis and penalizing path changes against the previous
// assignments.
func (c *Configurator) ReconfigureAt(prev *Result, period int) (*Result, error) {
	return c.ReconfigureAtContext(context.Background(), prev, period)
}

// ReconfigureAtContext is ReconfigureAt with a cancellation context.
func (c *Configurator) ReconfigureAtContext(ctx context.Context, prev *Result, period int) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: ReconfigureAt requires a previous result")
	}
	return c.solvePeriod(ctx, period, prev, nil)
}

// solvePeriod builds and solves the period model. When the full solve
// fails to produce an incumbent, it falls down the degradation ladder:
// best incumbent → rounded LP relaxation → keep the previous configuration
// → empty configuration, recording the serving tier in Result.Tier.
func (c *Configurator) solvePeriod(ctx context.Context, period int, prev *Result, over bwOverride) (*Result, error) {
	start := time.Now()
	var prevAssign []Assignment
	if prev != nil {
		prevAssign = prev.Assignments
	}
	m, err := c.buildModel(period, prevAssign, over)
	if err != nil {
		return nil, err
	}
	var warm *lp.Basis
	if prev != nil {
		warm = prev.basis
	}
	sol, tier, err := c.solveModel(ctx, m, prevAssign, warm)
	if err != nil {
		// Cancellation is not a solver failure; never degrade past it.
		return nil, fmt.Errorf("core: solving period %d: %w", period, err)
	}
	if tier == TierNone && prev != nil {
		// Rung 3: keep the previous configuration untouched.
		return c.keepPrevious(prev, period, m, sol, start), nil
	}
	return c.extractResult(m, sol, tier, period, start), nil
}

// solveModel runs branch and bound on a built model with the standard
// options: branch priorities on the I_i group decisions, the greedy MIP
// start, and an optional warm basis. When the search produces no incumbent
// it falls to the rounded LP relaxation (rung 2 of the degradation
// ladder); tier is TierNone when even that failed, and the caller decides
// whether a previous configuration can be kept instead.
func (c *Configurator) solveModel(ctx context.Context, m *model, prevAssign []Assignment, warm *lp.Basis) (*milp.Solution, DegradationTier, error) {
	solver := milp.NewSolver(m.prob, m.integers)
	// Branch on group decisions (I_i) before individual path indicators:
	// fixing a policy in or out prunes the tree far faster.
	prio := make(map[int]int, len(m.iVar))
	for _, iv := range m.iVar {
		prio[iv] = 1
	}
	sol, err := solver.Solve(ctx, milp.Options{
		MaxNodes:       c.cfg.MaxNodes,
		TimeLimit:      c.cfg.TimeLimit,
		RelGap:         c.cfg.RelGap,
		Branching:      c.cfg.Branching,
		StallNodes:     c.cfg.StallNodes,
		Workers:        c.cfg.Workers,
		BranchPriority: prio,
		MIPStart:       greedyStart(c, m, prevAssign),
		WarmStart:      warm,
	})
	if err != nil {
		return nil, TierNone, err
	}
	switch sol.Status {
	case milp.Optimal:
		return sol, TierFull, nil
	case milp.Feasible:
		// A node/time/stall limit stopped the proof; the incumbent serves.
		return sol, TierIncumbent, nil
	default:
		// Limit with no incumbent, Infeasible, or Unbounded. Rung 2: round
		// the LP relaxation.
		if rsol, ok := solver.RelaxAndRound(ctx); ok {
			return rsol, TierLPRound, nil
		}
		return sol, TierNone, nil
	}
}

// extractResult converts a solved model into a Result: configured flags
// from the I_i indicators, assignments from the selected path variables,
// and the link report (reservations from the integer solution, shadow
// prices from the root relaxation, §5.6 sensitivity analysis).
func (c *Configurator) extractResult(m *model, sol *milp.Solution, tier DegradationTier, period int, start time.Time) *Result {
	res := &Result{
		Period:     period,
		Configured: make(map[int]bool, len(m.pids)),
		SlackUsed:  make(map[int]bool),
		Status:     sol.Status,
		Tier:       tier,
		Stats: Stats{
			Variables:    m.prob.NumVariables(),
			Constraints:  m.prob.NumConstraints(),
			Nodes:            sol.Nodes,
			LPIterations:     sol.LPIterations,
			Refactorizations: sol.Refactorizations,
			PricingSwitches:  sol.PricingSwitches,
			Workers:          sol.Workers,
			Duration:         time.Since(start),
		},
		basis: sol.RootBasis,
	}
	if sol.X == nil {
		// The model always admits the all-zero solution, so this indicates
		// a limit hit before any incumbent was found (and rung 2 failed).
		for _, pid := range m.pids {
			res.Configured[pid] = false
		}
		return res
	}
	res.Objective = sol.Objective
	for _, pid := range m.pids {
		res.Configured[pid] = sol.X[m.iVar[pid]] > 0.5
	}
	for pid, xi := range m.xiVar {
		res.SlackUsed[pid] = sol.X[xi] > 0.5
	}
	for _, pv := range m.pvars {
		if sol.X[pv.v] > 0.5 {
			res.Assignments = append(res.Assignments, Assignment{
				Policy:  pv.pid,
				EdgeIdx: pv.edgeIdx,
				Role:    pv.role,
				Src:     pv.src,
				Dst:     pv.dst,
				Path:    pv.path,
				BW:      pv.bw,
			})
		}
	}
	// Link report: reservations from the integer solution, shadow prices
	// from the root relaxation (§5.6 sensitivity analysis).
	reserved := map[[2]int64]float64{}
	for _, a := range res.Assignments {
		for _, l := range a.Path.Links() {
			reserved[[2]int64{int64(l[0]), int64(l[1])}] += a.BW
		}
	}
	for l, row := range m.linkRow {
		capacity, _ := c.topo.LinkCapacity(l[0], l[1])
		use := LinkUse{
			From: l[0], To: l[1],
			Capacity: capacity,
			Reserved: reserved[[2]int64{int64(l[0]), int64(l[1])}],
		}
		if sol.RootDuals != nil && row < len(sol.RootDuals) {
			use.ShadowPrice = sol.RootDuals[row]
		}
		res.Links = append(res.Links, use)
	}
	return res
}

// keepPrevious is the last resort of the degradation ladder: the period's
// solve produced nothing usable, so the previous configuration is served
// verbatim — stale paths beat no paths, and because the assignments are
// identical the dataplane sees zero rule churn.
func (c *Configurator) keepPrevious(prev *Result, period int, m *model, failed *milp.Solution, start time.Time) *Result {
	res := &Result{
		Period:      period,
		Configured:  make(map[int]bool, len(prev.Configured)),
		SlackUsed:   make(map[int]bool, len(prev.SlackUsed)),
		Assignments: append([]Assignment(nil), prev.Assignments...),
		Objective:   prev.Objective,
		Links:       append([]LinkUse(nil), prev.Links...),
		Status:      failed.Status,
		Tier:        TierKeepPrevious,
		Stats: Stats{
			Variables:    m.prob.NumVariables(),
			Constraints:  m.prob.NumConstraints(),
			Nodes:            failed.Nodes,
			LPIterations:     failed.LPIterations,
			Refactorizations: failed.Refactorizations,
			PricingSwitches:  failed.PricingSwitches,
			Workers:          failed.Workers,
			Duration:     time.Since(start),
		},
		basis: prev.basis,
	}
	for pid, ok := range prev.Configured {
		res.Configured[pid] = ok
	}
	for pid, used := range prev.SlackUsed {
		res.SlackUsed[pid] = used
	}
	return res
}
