package core

import (
	"testing"
	"time"

	"janus/internal/compose"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/topo"
	"janus/internal/workload"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scheme == nil || c.Lambda != 0.2 || c.Rho != 0.2 {
		t.Errorf("defaults: %+v", c)
	}
	if c.RelGap != 0.02 || c.MaxNodes != 10000 || c.StallNodes != 60 {
		t.Errorf("solver defaults: %+v", c)
	}
	if c.TimeLimit != 30*time.Second {
		t.Errorf("time limit default: %v", c.TimeLimit)
	}
	// Negative sentinels disable limits.
	c2 := Config{TimeLimit: -1, StallNodes: -1}.withDefaults()
	if c2.TimeLimit != 0 || c2.StallNodes != 0 {
		t.Errorf("negative sentinels: %+v", c2)
	}
}

func TestShortestFirstSelection(t *testing.T) {
	tp, cg := fig2Setup(t)
	c := mustNew(t, tp, cg, Config{CandidatePaths: 1, ShortestFirst: true})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1 shortest-first, every assignment must ride a shortest valid
	// path for its slot.
	e := paths.NewEnumerator(tp)
	for _, a := range res.Assignments {
		p := cg.PolicyByID(a.Policy)
		edge := p.AllEdges()[a.EdgeIdx]
		srcEP, _ := tp.EndpointByName(a.Src)
		dstEP, _ := tp.EndpointByName(a.Dst)
		all, err := e.Valid(srcEP.Attach, dstEP.Attach, edge.Chain)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) > 0 && a.Path.Hops() != all[0].Hops() {
			t.Errorf("assignment %s hops %d, shortest is %d", a.Key(), a.Path.Hops(), all[0].Hops())
		}
	}
}

func TestBottlenecksSorted(t *testing.T) {
	r := &Result{Links: []LinkUse{
		{From: 1, To: 2, ShadowPrice: 0.1},
		{From: 3, To: 4, ShadowPrice: 0},
		{From: 5, To: 6, ShadowPrice: 0.9},
	}}
	bn := r.Bottlenecks()
	if len(bn) != 2 {
		t.Fatalf("bottlenecks = %d, want 2 (zero price excluded)", len(bn))
	}
	if bn[0].ShadowPrice < bn[1].ShadowPrice {
		t.Error("bottlenecks not sorted descending")
	}
}

func TestAssignmentKey(t *testing.T) {
	a := Assignment{Policy: 3, EdgeIdx: 1, Role: HardEdge, Src: "x", Dst: "y"}
	b := Assignment{Policy: 3, EdgeIdx: 1, Role: HardEdge, Src: "x", Dst: "y",
		Path: paths.Path{Nodes: []topo.NodeID{1, 2}}}
	if a.Key() != b.Key() {
		t.Error("Key must identify the slot, not the chosen path")
	}
	// Hard slots are keyed per pair regardless of which temporal edge is
	// active (Fig 6: the 9-18h and 18-9h edges are the same slot).
	c := Assignment{Policy: 3, EdgeIdx: 2, Role: HardEdge, Src: "x", Dst: "y"}
	if a.Key() != c.Key() {
		t.Error("hard keys must not depend on the edge index")
	}
	// Soft slots keep the edge index: one pair can hold several
	// reservations.
	s1 := Assignment{Policy: 3, EdgeIdx: 1, Role: SoftEdge, Src: "x", Dst: "y"}
	s2 := Assignment{Policy: 3, EdgeIdx: 2, Role: SoftEdge, Src: "x", Dst: "y"}
	if s1.Key() == s2.Key() {
		t.Error("soft keys must include the edge index")
	}
	if a.Key() == s1.Key() {
		t.Error("hard and soft slots must not collide")
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{
		Configured: map[int]bool{0: true, 1: false, 2: true},
		Assignments: []Assignment{
			{Policy: 0, Role: HardEdge, Src: "a", Dst: "b"},
			{Policy: 0, Role: SoftEdge, Src: "a", Dst: "b"},
		},
	}
	if r.SatisfiedCount() != 2 {
		t.Errorf("SatisfiedCount = %d, want 2", r.SatisfiedCount())
	}
	if _, ok := r.AssignmentFor(0, "a", "b"); !ok {
		t.Error("AssignmentFor should find the hard assignment")
	}
	if got, _ := r.AssignmentFor(0, "a", "b"); got.Role != HardEdge {
		t.Error("AssignmentFor must prefer the hard edge")
	}
	if _, ok := r.AssignmentFor(9, "a", "b"); ok {
		t.Error("AssignmentFor on missing policy should fail")
	}
}

func TestMaxPathsPerPairCapsModel(t *testing.T) {
	w, err := workload.Generate("Ans", workload.Spec{Policies: 5, EndpointsPerPolicy: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big := mustNew(t, w.Topo, w.Graph, Config{CandidatePaths: 0, Seed: 3})
	resBig, err := big.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh workload (topology was mutated by NF placement once; reuse it
	// with a fresh configurator and a tight cap).
	capped := mustNew(t, w.Topo, w.Graph, Config{CandidatePaths: 0, MaxPathsPerPair: 3, Seed: 3})
	resCap, err := capped.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if resCap.Stats.Variables >= resBig.Stats.Variables {
		t.Errorf("capped model (%d vars) should be smaller than full (%d)",
			resCap.Stats.Variables, resBig.Stats.Variables)
	}
}

func TestConfigureEmptyComposedGraph(t *testing.T) {
	tp := topo.NewTopology("e")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 10); err != nil {
		t.Fatal(err)
	}
	cg, err := compose.New(nil).Compose()
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configured) != 0 || len(res.Assignments) != 0 {
		t.Errorf("empty graph produced %v", res)
	}
}

func TestPolicyWithUnknownQoSLabelErrors(t *testing.T) {
	tp := topo.NewTopology("bad")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 10); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("x", a, "X"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("y", b, "Y"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "X", Dst: "Y", QoS: policy.QoS{MinBandwidth: "turbo"}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	if _, err := c.Configure(0); err == nil {
		t.Error("unknown QoS label should surface as an error")
	}
}

// TestMerlinBaselineVsJanus reproduces the §2.1 contrast: a policy set
// where simultaneous satisfaction is impossible. The Merlin-style check
// reports infeasible and gives the writers nothing; Janus configures the
// satisfiable subset.
func TestMerlinBaselineVsJanus(t *testing.T) {
	// One 50 Mbps link, two policies wanting 40 Mbps each.
	tp := topo.NewTopology("merlin")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 50); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		name, label string
	}{{"x1", "X"}, {"y1", "Y"}} {
		if err := tp.AddEndpoint(ep.name, a, ep.label); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("srv", b, "Srv"); err != nil {
		t.Fatal(err)
	}
	gx := policy.NewGraph("gx")
	gx.AddEdge(policy.Edge{Src: "X", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 40}})
	gy := policy.NewGraph("gy")
	gy.AddEdge(policy.Edge{Src: "Y", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 40}})
	cg, err := compose.New(nil).Compose(gx, gy)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})

	rep, err := c.CheckFeasibility(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Error("80 Mbps demand on a 50 Mbps link should be infeasible")
	}
	if rep.Result != nil {
		t.Error("infeasible check must return no configuration (all or nothing)")
	}
	if rep.Policies != 2 {
		t.Errorf("policies = %d, want 2", rep.Policies)
	}

	res, err := c.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Errorf("Janus should satisfy 1 of 2, got %d", res.SatisfiedCount())
	}
}

func TestMerlinBaselineFeasibleCase(t *testing.T) {
	tp := topo.NewTopology("merlin2")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 100); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("x1", a, "X"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Srv"); err != nil {
		t.Fatal(err)
	}
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "X", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 40}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, tp, cg, Config{})
	rep, err := c.CheckFeasibility(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Result == nil {
		t.Fatal("single satisfiable policy should be feasible")
	}
	if rep.Result.SatisfiedCount() != 1 || len(rep.Result.Assignments) != 1 {
		t.Errorf("feasible result: %+v", rep.Result)
	}
}
