package core

import (
	"sort"

	"janus/internal/topo"
)

// greedyStart constructs a feasible 0/1 assignment for the model by
// admitting policies in descending weight order and routing each endpoint
// pair on the candidate path with the most residual headroom. It is the
// MIP start fed to branch and bound: a strong initial incumbent lets the
// solver prune aggressively from the first node, which matters because the
// random-candidate models of §5.2 have weak LP bounds.
//
// prevAssign biases path selection toward previously used paths so the
// start also scores well on the path-change penalty (Eqn 7–8).
func greedyStart(c *Configurator, m *model, prevAssign []Assignment) map[int]float64 {
	start := make(map[int]float64, len(m.integers))
	for _, v := range m.integers {
		start[v] = 0
	}
	// Residual capacity per directed link.
	residual := make(map[[2]topo.NodeID]float64, len(m.linkCap))
	for l, capacity := range m.linkCap {
		residual[l] = capacity
	}
	prevPath := make(map[string]string, len(prevAssign))
	for _, a := range prevAssign {
		prevPath[a.Key()] = a.Path.Key()
	}

	// Group path variables by policy, then by convexity row (edge, pair).
	type rowKey struct {
		edgeIdx  int
		src, dst string
	}
	type polGroup struct {
		pid  int
		hard map[rowKey][]*pathVar
		soft map[rowKey][]*pathVar
	}
	groups := make(map[int]*polGroup, len(m.pids))
	for i := range m.pvars {
		pv := &m.pvars[i]
		g, ok := groups[pv.pid]
		if !ok {
			g = &polGroup{pid: pv.pid, hard: map[rowKey][]*pathVar{}, soft: map[rowKey][]*pathVar{}}
			groups[pv.pid] = g
		}
		k := rowKey{pv.edgeIdx, pv.src, pv.dst}
		if pv.role == HardEdge {
			g.hard[k] = append(g.hard[k], pv)
		} else {
			g.soft[k] = append(g.soft[k], pv)
		}
	}

	// Policies in descending weight, ties by ID for determinism.
	order := append([]int(nil), m.pids...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := m.weights[order[i]], m.weights[order[j]]
		if wi != wj { //janus:allow(floatcmp): sort comparator needs exact ordering; epsilon ties would break transitivity
			return wi > wj
		}
		return order[i] < order[j]
	})

	// tryRows picks one path per row that fits the residuals; on success it
	// returns the picks and the updated residuals are committed by the
	// caller via apply.
	tryRows := func(rows map[rowKey][]*pathVar, res map[[2]topo.NodeID]float64) ([]*pathVar, bool) {
		keys := make([]rowKey, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.edgeIdx != b.edgeIdx {
				return a.edgeIdx < b.edgeIdx
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.dst < b.dst
		})
		picks := make([]*pathVar, 0, len(keys))
		for _, k := range keys {
			var best *pathVar
			bestScore := -1.0
			for _, pv := range rows[k] {
				if !fits(pv, res) {
					continue
				}
				score := headroom(pv, res)
				// Strongly prefer the previously used path (Eqn 7).
				key := Assignment{Policy: pv.pid, EdgeIdx: pv.edgeIdx, Role: pv.role, Src: pv.src, Dst: pv.dst}.Key()
				if prevPath[key] == pv.path.Key() {
					score += 1e12
				}
				if score > bestScore {
					best, bestScore = pv, score
				}
			}
			if best == nil {
				return nil, false
			}
			reserve(best, res)
			picks = append(picks, best)
		}
		return picks, true
	}

	for _, pid := range order {
		if m.unconfigurable[pid] {
			continue // an empty hard row forces I = 0 (Eqn 2)
		}
		g, ok := groups[pid]
		if !ok {
			// A policy whose active edges produced no path variables (e.g.
			// every pair has zero candidates) cannot be admitted.
			continue
		}
		if len(g.hard) == 0 {
			continue
		}
		// Tentatively route the hard rows on a copy of the residuals; a
		// failed attempt leaves the committed residuals untouched.
		trial := copyResiduals(residual)
		picks, ok := tryRows(g.hard, trial)
		if !ok {
			continue
		}
		// Soft reservation is all-or-nothing per policy (ξ_i is shared):
		// attempt it on a further copy and keep it only if every soft row
		// fits.
		var softPicks []*pathVar
		if len(g.soft) > 0 {
			softTrial := copyResiduals(trial)
			if sp, softOK := tryRows(g.soft, softTrial); softOK {
				softPicks = sp
				trial = softTrial
			}
		}
		residual = trial
		start[m.iVar[pid]] = 1
		for _, pv := range picks {
			start[pv.v] = 1
		}
		for _, pv := range softPicks {
			start[pv.v] = 1
		}
	}
	return start
}

func fits(pv *pathVar, residual map[[2]topo.NodeID]float64) bool {
	if pv.bw <= 0 {
		return true
	}
	for _, l := range pv.path.Links() {
		if !fitsEps(residual[l], pv.bw) {
			return false
		}
	}
	return true
}

// headroom scores a candidate by its minimum post-reservation residual:
// preferring paths that leave the most slack spreads load (the
// edge-disjointedness intuition of §5.2).
func headroom(pv *pathVar, residual map[[2]topo.NodeID]float64) float64 {
	minResid := 1e18
	for _, l := range pv.path.Links() {
		r := residual[l] - pv.bw
		if r < minResid {
			minResid = r
		}
	}
	if len(pv.path.Links()) == 0 {
		return 0
	}
	// Shorter paths win ties: they consume less total capacity.
	return minResid - float64(pv.path.Hops())*1e-3
}

func reserve(pv *pathVar, residual map[[2]topo.NodeID]float64) {
	if pv.bw <= 0 {
		return
	}
	for _, l := range pv.path.Links() {
		residual[l] -= pv.bw
	}
}

func release(pv *pathVar, residual map[[2]topo.NodeID]float64) {
	if pv.bw <= 0 {
		return
	}
	for _, l := range pv.path.Links() {
		residual[l] += pv.bw
	}
}

func copyResiduals(in map[[2]topo.NodeID]float64) map[[2]topo.NodeID]float64 {
	out := make(map[[2]topo.NodeID]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
