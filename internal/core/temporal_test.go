package core

import (
	"testing"
	"time"

	"janus/internal/compose"
	"janus/internal/policy"
	"janus/internal/topo"
)

// twoPeriodSetup builds a diamond network and two policies that partition
// the day: Day (8-20) and Night (20-8), each wanting 60 of the 100 Mbps
// direct link, so each period has slack for exactly one.
func twoPeriodSetup(t *testing.T) (*topo.Topology, *compose.Graph) {
	t.Helper()
	tp := topo.NewTopology("2p")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	mid := tp.AddSwitch("mid")
	link := func(x, y topo.NodeID, c float64) {
		t.Helper()
		if err := tp.AddLink(x, y, c); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b, 100)
	link(a, mid, 100)
	link(mid, b, 100)
	if err := tp.AddEndpoint("d1", a, "Day"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("n1", a, "Night"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("srv", b, "Srv"); err != nil {
		t.Fatal(err)
	}
	gd := policy.NewGraph("day")
	gd.AddEdge(policy.Edge{Src: "Day", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 60},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 8, End: 20}}})
	gn := policy.NewGraph("night")
	gn.AddEdge(policy.Edge{Src: "Night", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 60},
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 20, End: 8}}})
	cg, err := compose.New(nil).Compose(gd, gn)
	if err != nil {
		t.Fatal(err)
	}
	return tp, cg
}

func TestConfigureTemporalJointMatchesGreedy(t *testing.T) {
	tp, cg := twoPeriodSetup(t)
	conf := mustNew(t, tp, cg, Config{TimeLimit: 30 * time.Second})
	greedy, err := conf.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	joint, err := conf.ConfigureTemporalJoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(joint.Results) != len(greedy.Results) {
		t.Fatalf("joint has %d period results, greedy %d", len(joint.Results), len(greedy.Results))
	}
	// Both must configure each policy in its own period: total 2 each...
	// actually each policy is active in exactly one of the two periods
	// (boundaries at 8 and 20 plus hour 0, which falls in the night
	// window), so the totals must agree.
	if joint.TotalConfigured != greedy.TotalConfigured {
		t.Errorf("joint configured %d, greedy %d", joint.TotalConfigured, greedy.TotalConfigured)
	}
	if joint.TotalConfigured == 0 {
		t.Error("joint configured nothing")
	}
}

func TestConfigureTemporalJointEmptyGraph(t *testing.T) {
	tp := topo.NewTopology("e")
	a := tp.AddSwitch("")
	b := tp.AddSwitch("")
	if err := tp.AddLink(a, b, 10); err != nil {
		t.Fatal(err)
	}
	cg, err := compose.New(nil).Compose()
	if err != nil {
		t.Fatal(err)
	}
	conf := mustNew(t, tp, cg, Config{})
	tr, err := conf.ConfigureTemporalJoint()
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalConfigured != 0 {
		t.Errorf("empty graph configured %d", tr.TotalConfigured)
	}
}

func TestTemporalChainPeriodsMatchGraph(t *testing.T) {
	tp, cg := twoPeriodSetup(t)
	conf := mustNew(t, tp, cg, Config{})
	tr, err := conf.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	want := cg.Periods()
	if len(tr.Periods) != len(want) {
		t.Fatalf("periods %v, want %v", tr.Periods, want)
	}
	for i := range want {
		if tr.Periods[i] != want[i] {
			t.Fatalf("periods %v, want %v", tr.Periods, want)
		}
	}
	// Day policy configured only in the day period.
	day, _ := cg.Lookup("Day", "Srv")
	night, _ := cg.Lookup("Night", "Srv")
	for _, res := range tr.Results {
		isDay := res.Period >= 8 && res.Period < 20
		if got := res.Configured[day.ID]; got != isDay {
			t.Errorf("period %dh: day policy configured=%v, want %v", res.Period, got, isDay)
		}
		if got := res.Configured[night.ID]; got != !isDay {
			t.Errorf("period %dh: night policy configured=%v, want %v", res.Period, got, !isDay)
		}
	}
}

func TestNegotiateNilBaselineComputesOne(t *testing.T) {
	tp, cg := twoPeriodSetup(t)
	conf := mustNew(t, tp, cg, Config{})
	nego, err := conf.Negotiate(nil, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if nego.Baseline == nil || nego.Negotiated == nil {
		t.Fatal("negotiation should compute both chains")
	}
}

func TestBwOverrideFactor(t *testing.T) {
	var o bwOverride
	if o.factor(1, 2) != 1 {
		t.Error("nil override should be identity")
	}
	o = bwOverride{1: {2: 0.95}}
	if o.factor(1, 2) != 0.95 {
		t.Error("explicit factor not returned")
	}
	if o.factor(1, 3) != 1 || o.factor(9, 2) != 1 {
		t.Error("missing entries should be identity")
	}
}

func TestActiveEdgesClassification(t *testing.T) {
	g := policy.NewGraph("g")
	g.AddEdge(policy.Edge{Src: "A", Dst: "B", Default: true})
	g.AddEdge(policy.Edge{Src: "A", Dst: "B",
		Cond: policy.Condition{Stateful: policy.WhenAtLeast(policy.FailedConnections, 5)}})
	g.AddEdge(policy.Edge{Src: "A", Dst: "B",
		Cond: policy.Condition{Window: policy.TimeWindow{Start: 9, End: 18}}})
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	p := cg.Policies[0]
	hard, soft := activeEdges(p, 10)
	// At 10h: default (hard), stateful (soft), pure-temporal (hard).
	if len(hard) != 2 || len(soft) != 1 {
		t.Errorf("at 10h: hard=%v soft=%v, want 2 hard 1 soft", hard, soft)
	}
	hard, soft = activeEdges(p, 2)
	// At 2h the temporal edge is inactive.
	if len(hard) != 1 || len(soft) != 1 {
		t.Errorf("at 2h: hard=%v soft=%v, want 1 hard 1 soft", hard, soft)
	}
}
