package core

import (
	"fmt"
	"math/rand"
	"sort"

	"janus/internal/compose"
	"janus/internal/lp"
	"janus/internal/paths"
	"janus/internal/topo"
)

// pathVar is one P_{i,p} indicator: policy pid's edge edgeIdx for endpoint
// pair (src,dst) realized over path.
type pathVar struct {
	v       int // lp variable index
	pid     int
	edgeIdx int
	role    EdgeRole
	src     string
	dst     string
	path    paths.Path
	bw      float64
	jitter  int  // priority-queue level, -1 when no jitter requirement
	hasJit  bool //
}

// model is one period's optimization problem plus its variable layout.
type model struct {
	prob      *lp.Problem
	period    int
	iVar      map[int]int // pid -> I_i
	xiVar     map[int]int // pid -> ξ_i (only for policies with soft edges)
	pvars     []pathVar
	linkRow   map[[2]topo.NodeID]int     // capacity rows (Eqn 3)
	linkCap   map[[2]topo.NodeID]float64 // capacities of those rows
	pids      []int                      // policies in the model, sorted
	weights   map[int]float64
	weightSum float64
	integers  []int
	// unconfigurable marks policies with a hard (edge, pair) row that has
	// zero candidate paths: Eqn 2 then forces I_i = 0. The greedy start
	// must not admit them.
	unconfigurable map[int]bool
}

// activeEdges classifies the edges of p at hour h into hard edges (the
// policy itself; Eqn 2) and soft edges (stateful escalations reserved via
// ξ; Eqn 4).
func activeEdges(p *compose.Policy, h int) (hard, soft []int) {
	all := p.AllEdges()
	for i, e := range all {
		if !e.Cond.Window.Contains(h) {
			continue
		}
		// Normal-traffic edges are hard: the policy's default edge, any
		// edge the composer marked Default (refineDefaults narrows them
		// with the implicit below-threshold condition but keeps the flag),
		// and pure-temporal edges. Stateful escalations are soft.
		if i == 0 || e.Default || e.Cond.Stateful.IsAlways() {
			hard = append(hard, i)
		} else {
			soft = append(soft, i)
		}
	}
	return hard, soft
}

// pairsOf resolves the endpoint pairs of a policy: the cross product of the
// endpoints matching its source and destination EPGs (§5.1: "the endpoint
// to EPG mapping can be used to infer the policy associated with each
// <src,dst> endpoint pair").
func (c *Configurator) pairsOf(p *compose.Policy) [][2]string {
	return pairsOn(c.topo, p)
}

// pairsOn is pairsOf on an explicit topology, shared with the dependency
// index builder.
func pairsOn(t *topo.Topology, p *compose.Policy) [][2]string {
	srcs := t.EndpointsMatching(p.Src)
	dsts := t.EndpointsMatching(p.Dst)
	var out [][2]string
	for _, s := range srcs {
		for _, d := range dsts {
			if s != d {
				out = append(out, [2]string{s, d})
			}
		}
	}
	return out
}

// bwOverride allows temporal negotiation (§5.6) to scale a policy's
// bandwidth per period: multiplier[pid][period].
type bwOverride map[int]map[int]float64

func (o bwOverride) factor(pid, period int) float64 {
	if o == nil {
		return 1
	}
	m, ok := o[pid]
	if !ok {
		return 1
	}
	f, ok := m[period]
	if !ok {
		return 1
	}
	return f
}

// modelScope restricts a period model to a subset of policies solved
// against residual link capacities — the delta sub-model. include lists
// the policy IDs to model; residual overrides the capacity of directed
// links that carry frozen assignments (links absent from the map keep
// their full topology capacity).
type modelScope struct {
	include  map[int]bool
	residual map[[2]topo.NodeID]float64
}

// buildModel constructs the period-h optimization (Eqns 1–6 and 10).
// prevAssign, when non-nil, adds path-change penalties (Eqns 7–8) against
// that assignment set.
func (c *Configurator) buildModel(h int, prevAssign []Assignment, over bwOverride) (*model, error) {
	return c.buildModelScoped(h, prevAssign, over, nil)
}

// buildModelScoped is buildModel restricted to a scope; a nil scope builds
// the full period model.
func (c *Configurator) buildModelScoped(h int, prevAssign []Assignment, over bwOverride, scope *modelScope) (*model, error) {
	m := &model{
		prob:           lp.NewProblem(),
		period:         h,
		iVar:           map[int]int{},
		xiVar:          map[int]int{},
		linkRow:        map[[2]topo.NodeID]int{},
		linkCap:        map[[2]topo.NodeID]float64{},
		weights:        map[int]float64{},
		unconfigurable: map[int]bool{},
	}
	// Deterministic candidate selection per (policy, chain, pair): a child
	// RNG seeded from the configurator seed and the slot identity, so the
	// same slot sees the same candidates across periods and re-solves
	// (stable layout helps warm starts and path-change minimization). The
	// seed deliberately uses the service chain rather than the edge index:
	// a temporal policy's per-window edges share a chain (Fig 6), and they
	// must see the same candidates or cross-period path persistence would
	// be impossible by construction.
	slotRNG := func(pid int, chain fmt.Stringer, src, dst string) *rand.Rand {
		seed := c.cfg.Seed
		seed = seed*1000003 + int64(pid)*31
		for _, ch := range chain.String() + "|" + src + "|" + dst {
			seed = seed*16777619 + int64(ch)
		}
		return rand.New(rand.NewSource(seed))
	}

	type softGroup struct {
		pid  int
		rows [][]lp.Term // one convexity row per (soft edge, pair)
	}
	var softGroups []softGroup

	// Sort policies by ID for deterministic layout.
	pols := append([]*compose.Policy(nil), c.graph.Policies...)
	sort.Slice(pols, func(i, j int) bool { return pols[i].ID < pols[j].ID })

	for _, p := range pols {
		if scope != nil && !scope.include[p.ID] {
			continue // frozen outside the delta scope
		}
		hard, soft := activeEdges(p, h)
		if len(hard) == 0 {
			continue // policy not active in this period
		}
		pairs := c.pairsOf(p)
		if len(pairs) == 0 {
			continue // no endpoints currently in the groups
		}
		m.pids = append(m.pids, p.ID)
		m.weights[p.ID] = p.Weight
		m.weightSum += p.Weight
		iv := m.prob.AddBinary(0) // objective set after weightSum known
		m.iVar[p.ID] = iv
		m.integers = append(m.integers, iv)

		all := p.AllEdges()
		addEdgeVars := func(edgeIdx int, role EdgeRole) ([][]lp.Term, error) {
			e := all[edgeIdx]
			bw, err := e.QoS.MinBandwidthMbps(c.scheme)
			if err != nil {
				return nil, fmt.Errorf("core: policy %d edge %d: %w", p.ID, edgeIdx, err)
			}
			bw *= over.factor(p.ID, h)
			hopBudget, _, err := e.QoS.HopBudget(c.scheme)
			if err != nil {
				return nil, fmt.Errorf("core: policy %d edge %d: %w", p.ID, edgeIdx, err)
			}
			jitLevel, hasJit, err := e.QoS.JitterLevel(c.scheme)
			if err != nil {
				return nil, fmt.Errorf("core: policy %d edge %d: %w", p.ID, edgeIdx, err)
			}
			rows := make([][]lp.Term, 0, len(pairs))
			for _, pair := range pairs {
				srcEP, ok := c.topo.EndpointByName(pair[0])
				if !ok {
					return nil, fmt.Errorf("core: unknown endpoint %q", pair[0])
				}
				dstEP, ok := c.topo.EndpointByName(pair[1])
				if !ok {
					return nil, fmt.Errorf("core: unknown endpoint %q", pair[1])
				}
				var cands []paths.Path
				if c.cfg.ShortestFirst {
					cands, err = c.enum.ShortestFirst(srcEP.Attach, dstEP.Attach, e.Chain, c.cfg.CandidatePaths, hopBudget)
				} else {
					rng := slotRNG(p.ID, e.Chain, pair[0], pair[1])
					cands, err = c.enum.Candidates(rng, srcEP.Attach, dstEP.Attach, e.Chain, c.cfg.CandidatePaths, hopBudget)
				}
				if err != nil {
					return nil, fmt.Errorf("core: policy %d pair %v: %w", p.ID, pair, err)
				}
				terms := make([]lp.Term, 0, len(cands))
				for _, cp := range cands {
					pv := m.prob.AddBinary(0)
					m.integers = append(m.integers, pv)
					m.pvars = append(m.pvars, pathVar{
						v: pv, pid: p.ID, edgeIdx: edgeIdx, role: role,
						src: pair[0], dst: pair[1], path: cp, bw: bw,
						jitter: jitLevel, hasJit: hasJit,
					})
					terms = append(terms, lp.Term{Var: pv, Coef: 1})
				}
				rows = append(rows, terms)
			}
			return rows, nil
		}

		for _, ei := range hard {
			rows, err := addEdgeVars(ei, HardEdge)
			if err != nil {
				return nil, err
			}
			// Eqn 2: Σ_p P = I_i for every pair (group atomicity).
			for _, terms := range rows {
				if len(terms) == 0 {
					m.unconfigurable[p.ID] = true
				}
				terms = append(terms, lp.Term{Var: iv, Coef: -1})
				if _, err := m.prob.AddConstraint(lp.EQ, 0, terms); err != nil {
					return nil, err
				}
			}
		}
		if !c.cfg.DisableReservations && len(soft) > 0 {
			g := softGroup{pid: p.ID}
			for _, ei := range soft {
				rows, err := addEdgeVars(ei, SoftEdge)
				if err != nil {
					return nil, err
				}
				g.rows = append(g.rows, rows...)
			}
			softGroups = append(softGroups, g)
		}
	}

	// Soft constraints (Eqn 4): Σ_p P_ndp = I_i − ξ_i, with ξ penalized in
	// the objective (Eqn 6).
	for _, g := range softGroups {
		xi := m.prob.AddVariable(0, 1, 0)
		m.xiVar[g.pid] = xi
		for _, terms := range g.rows {
			terms = append(terms, lp.Term{Var: m.iVar[g.pid], Coef: -1}, lp.Term{Var: xi, Coef: 1})
			if _, err := m.prob.AddConstraint(lp.EQ, 0, terms); err != nil {
				return nil, err
			}
		}
	}

	// Resource constraints (Eqn 3): per directed link, Σ BW·P ≤ CAP.
	linkTerms := map[[2]topo.NodeID][]lp.Term{}
	for _, pv := range m.pvars {
		if pv.bw <= 0 {
			continue
		}
		for _, l := range pv.path.Links() {
			linkTerms[l] = append(linkTerms[l], lp.Term{Var: pv.v, Coef: pv.bw})
		}
	}
	linkKeys := make([][2]topo.NodeID, 0, len(linkTerms))
	for l := range linkTerms {
		linkKeys = append(linkKeys, l)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	for _, l := range linkKeys {
		capacity, ok := c.topo.LinkCapacity(l[0], l[1])
		if !ok {
			return nil, fmt.Errorf("core: path uses nonexistent link %v", l)
		}
		if scope != nil {
			if rc, ok := scope.residual[l]; ok {
				// Frozen assignments already hold part of this link; the
				// sub-model sees only what they left behind.
				capacity = rc
			}
		}
		r, err := m.prob.AddConstraint(lp.LE, capacity, linkTerms[l])
		if err != nil {
			return nil, err
		}
		m.linkRow[l] = r
		m.linkCap[l] = capacity
	}

	// Jitter constraints (Eqn 10): per switch and priority level, the
	// number of policies assigned to that level is capped by PR.
	if c.cfg.JitterQueueCap > 0 {
		type swLevel struct {
			sw    topo.NodeID
			level int
		}
		jitTerms := map[swLevel][]lp.Term{}
		for _, pv := range m.pvars {
			if !pv.hasJit {
				continue
			}
			for _, n := range pv.path.Nodes {
				if c.topo.Nodes[n].Kind != topo.Switch {
					continue
				}
				k := swLevel{n, pv.jitter}
				jitTerms[k] = append(jitTerms[k], lp.Term{Var: pv.v, Coef: 1})
			}
		}
		keys := make([]swLevel, 0, len(jitTerms))
		for k := range jitTerms {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].sw != keys[j].sw {
				return keys[i].sw < keys[j].sw
			}
			return keys[i].level < keys[j].level
		})
		for _, k := range keys {
			if _, err := m.prob.AddConstraint(lp.LE, float64(c.cfg.JitterQueueCap), jitTerms[k]); err != nil {
				return nil, err
			}
		}
	}

	// Objective (Eqns 1, 6, 8): normalized weighted coverage, minus λ-scaled
	// slack penalties, minus ρ-scaled path-change penalties.
	wsum := m.weightSum
	if wsum <= 0 {
		wsum = 1
	}
	for _, pid := range m.pids {
		if err := m.prob.SetObjective(m.iVar[pid], m.weights[pid]/wsum); err != nil {
			return nil, err
		}
	}
	for pid, xi := range m.xiVar {
		if err := m.prob.SetObjective(xi, -c.cfg.Lambda*m.weights[pid]/wsum); err != nil {
			return nil, err
		}
	}

	if len(prevAssign) > 0 {
		// Eqn 7: P_{i,p} = 1 − α_{i,p} for previously selected paths.
		// Index current variables by (slot key, path key), using the same
		// slot identity as Assignment.Key so temporal edges match across
		// periods.
		cur := make(map[string]int, len(m.pvars))
		for _, pv := range m.pvars {
			slot := Assignment{Policy: pv.pid, EdgeIdx: pv.edgeIdx, Role: pv.role, Src: pv.src, Dst: pv.dst}
			cur[slot.Key()+"|"+pv.path.Key()] = pv.v
		}
		var alphas []int
		for _, a := range prevAssign {
			k := a.Key() + "|" + a.Path.Key()
			pv, ok := cur[k]
			if !ok {
				continue // path no longer a candidate; change is unavoidable
			}
			alpha := m.prob.AddVariable(0, 1, 0)
			if _, err := m.prob.AddConstraint(lp.EQ, 1,
				[]lp.Term{{Var: pv, Coef: 1}, {Var: alpha, Coef: 1}}); err != nil {
				return nil, err
			}
			alphas = append(alphas, alpha)
		}
		if n := len(alphas); n > 0 {
			// Eqn 8 normalizes Σα by the number of previously selected
			// paths.
			for _, a := range alphas {
				if err := m.prob.SetObjective(a, -c.cfg.Rho/float64(n)); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}
