package core

import (
	"context"
	"testing"

	"janus/internal/milp"
	"janus/internal/milp/difftest"
	"janus/internal/workload"
)

// This file feeds the differential harness with corpus instances extracted
// from the *real* period models — the fig11 topologies, temporal windows,
// stateful (soft-edge) reservations, and path-change-penalized
// reconfigurations — rather than synthetic generator shapes. It lives in
// package core because extracting a model requires the unexported
// buildModel.

// corpusModel builds the period-h model for a generated workload and wraps
// it as a difftest instance.
func corpusModel(t *testing.T, name, topoName string, spec workload.Spec, cfg Config, h int, withPrev bool) difftest.Instance {
	t.Helper()
	w, err := workload.Generate(topoName, spec)
	if err != nil {
		t.Fatal(err)
	}
	conf := mustNew(t, w.Topo, w.Graph, cfg)
	var prev []Assignment
	if withPrev {
		res, err := conf.Configure(h)
		if err != nil {
			t.Fatal(err)
		}
		prev = res.Assignments
	}
	m, err := conf.buildModel(h, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	return difftest.Instance{Name: name, Prob: m.prob, Integers: m.integers}
}

func TestDifferentialCorpusRealModels(t *testing.T) {
	fig11 := workload.Spec{Policies: 6, EndpointsPerPolicy: 2, MaxNFs: 2, Seed: 7}
	temporal := workload.Spec{Policies: 5, EndpointsPerPolicy: 2, TimePeriods: 3, Seed: 11}
	stateful := workload.Spec{Policies: 5, EndpointsPerPolicy: 2, StatefulEdges: 2, Seed: 13}

	instances := []difftest.Instance{
		// Fig 11 shapes: the paper's headline experiment topologies.
		corpusModel(t, "corpus/fig11-ans", "Ans", fig11, Config{Seed: 7}, 0, false),
		corpusModel(t, "corpus/fig11-cwix", "Cwix", fig11, Config{Seed: 7}, 0, false),
		// Temporal policies active in different windows (§5.5).
		corpusModel(t, "corpus/temporal-h0", "Internode", temporal, Config{Seed: 11}, 0, false),
		corpusModel(t, "corpus/temporal-h12", "Internode", temporal, Config{Seed: 11}, 12, false),
		// Stateful escalations: soft edges with ξ slack (Eqn 4).
		corpusModel(t, "corpus/stateful", "Ans", stateful, Config{Seed: 13}, 0, false),
		// Reconfiguration against a previous assignment: path-change
		// penalties α (Eqns 7–8) add the mixed continuous structure.
		corpusModel(t, "corpus/reconfig", "Ans", fig11, Config{Seed: 7}, 0, true),
	}
	ctx := context.Background()
	for _, inst := range instances {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			rep, err := difftest.Compare(ctx, inst, 4, milp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Serial.X == nil {
				t.Fatalf("real model yielded no solution (status %v)", rep.Serial.Status)
			}
		})
	}
}
