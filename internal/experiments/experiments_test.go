package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny returns parameters small enough for unit tests.
func tiny() Params {
	return Params{Scale: 0.3, Seed: 1, Runs: 1, TimeLimit: 10 * time.Second}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer") {
		t.Errorf("rendered table missing parts:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

func TestFindExperiments(t *testing.T) {
	for _, e := range All {
		got, ok := Find(e.Name)
		if !ok || got.Name != e.Name {
			t.Errorf("Find(%s) failed", e.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != 1 || p.Runs != 1 || p.TimeLimit == 0 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if got := (Params{Scale: 0.1}).withDefaults().scaled(10); got != 1 {
		t.Errorf("scaled(10) at 0.1 = %d, want 1", got)
	}
}

// Each experiment must run end to end at tiny scale and produce
// well-formed tables. These are smoke tests; EXPERIMENTS.md captures the
// quantitative comparison at larger scale.

func runExp(t *testing.T, name string) []Table {
	t.Helper()
	e, ok := Find(name)
	if !ok {
		t.Fatalf("experiment %s missing", name)
	}
	tables, err := e.Run(tiny())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", name)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: table %q has no rows", name, tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", name, len(row), len(tb.Header))
			}
		}
	}
	return tables
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := runExp(t, "fig11")
	if len(tables) != len(figTopos) {
		t.Errorf("fig11: %d tables, want %d", len(tables), len(figTopos))
	}
}

func TestFig13GapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := runExp(t, "fig13")
	// Gap cells are percentages; sanity: parseable and within [0, 100].
	for _, row := range tables[0].Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "%") {
				t.Errorf("gap cell %q not a percentage", cell)
			}
		}
	}
}

func TestTable34Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Table34(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Table34 returned %d tables", len(tables))
	}
	if len(tables[0].Rows) != len(tableTopos) {
		t.Errorf("table3 rows = %d, want %d", len(tables[0].Rows), len(tableTopos))
	}
}

func TestFig14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := runExp(t, "fig14")
	// Zero endpoint changes must give zero path changes (first row).
	first := tables[0].Rows[0]
	if first[0] != "0" {
		t.Fatalf("first sweep point should be 0 changes, got %s", first[0])
	}
	if first[1] != "0" {
		t.Errorf("0 endpoint changes produced %s path changes, want 0", first[1])
	}
}

func TestFig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "fig15")
}

func TestTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "table5")
}

func TestFig16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "fig16")
}

func TestFig17Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := runExp(t, "fig17")
	if len(tables) != 2 {
		t.Errorf("fig17: %d tables, want 2 (N sweep, K sweep)", len(tables))
	}
}

func TestParBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExp(t, "parbench")
	b, err := RunParallelBench(tiny(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want Ans and Cwix", len(b.Entries))
	}
	for _, e := range b.Entries {
		if e.Workers != 4 {
			t.Errorf("%s: workers = %d, want 4", e.Topology, e.Workers)
		}
		if e.SerialSeconds <= 0 || e.ParallelSeconds <= 0 {
			t.Errorf("%s: non-positive timings %+v", e.Topology, e)
		}
		// The parallel solve must not change the answer, only the time.
		if e.SerialSat != e.ParallelSat {
			t.Errorf("%s: satisfied diverged serial %d vs parallel %d",
				e.Topology, e.SerialSat, e.ParallelSat)
		}
	}
	if b.GOMAXPROCS < 1 || b.NumCPU < 1 {
		t.Errorf("hardware fields unset: %+v", b)
	}
	// Schema v2: allocations-per-solve and the lp_micro section.
	if b.SchemaVersion != BenchSchemaVersion {
		t.Errorf("schema_version = %d, want %d", b.SchemaVersion, BenchSchemaVersion)
	}
	for _, e := range b.Entries {
		if e.SerialAllocsPerSolve == 0 || e.ParallelAllocsPerSolve == 0 {
			t.Errorf("%s: allocations-per-solve unset: %+v", e.Topology, e)
		}
	}
	if b.LPMicro == nil {
		t.Fatal("lp_micro section missing")
	}
	if b.LPMicro.ColdMicros <= 0 || b.LPMicro.WarmMicros <= 0 {
		t.Errorf("lp_micro timings unset: %+v", b.LPMicro)
	}
	if b.LPMicro.WarmMicros >= b.LPMicro.ColdMicros {
		t.Errorf("warm solve (%.1fµs) not cheaper than cold (%.1fµs): factorization reuse broken",
			b.LPMicro.WarmMicros, b.LPMicro.ColdMicros)
	}
	if b.LPMicro.WarmAllocsPerSolve > 100 {
		t.Errorf("warm re-solve allocates %.1f allocs/solve; workspace reuse broken",
			b.LPMicro.WarmAllocsPerSolve)
	}
	if b.Delta == nil {
		t.Fatal("delta section missing")
	}
}

// TestDeltaBenchSmoke checks the incremental-reconfiguration section on a
// reduced workload: both topologies and both event kinds measured, the
// sub-model strictly smaller than the policy set, and the delta solve
// faster than the full one it replaces.
func TestDeltaBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db, err := RunDeltaBench(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Entries) != 4 {
		t.Fatalf("entries = %d, want Ans/Cwix x move/linkfail", len(db.Entries))
	}
	for _, e := range db.Entries {
		if e.FullMillis <= 0 || e.DeltaMillis <= 0 {
			t.Errorf("%s/%s: timings unset: %+v", e.Topology, e.Event, e)
		}
		if e.AffectedPolicies <= 0 || e.AffectedPolicies >= float64(e.Policies) {
			t.Errorf("%s/%s: affected %.1f not a strict subset of %d policies",
				e.Topology, e.Event, e.AffectedPolicies, e.Policies)
		}
		if e.Speedup <= 1 {
			t.Errorf("%s/%s: delta solve (%.1fms) not faster than full (%.1fms)",
				e.Topology, e.Event, e.DeltaMillis, e.FullMillis)
		}
		if e.FullSatisfied <= 0 || e.DeltaSatisfied <= 0 {
			t.Errorf("%s/%s: satisfaction counts unset: %+v", e.Topology, e.Event, e)
		}
	}
}

// TestFastpathBenchSmoke checks the flow-arrival section end-to-end on a
// reduced workload: the compiled side must be strictly faster than the
// interpreted walk and allocation-free, and the compile cost must be
// measured.
func TestFastpathBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fp, err := RunFastpathBench(tiny(), "Ans")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Flows == 0 || fp.Probes == 0 {
		t.Fatalf("no flows compiled: %+v", fp)
	}
	if fp.InterpretedNanosPerLookup <= 0 || fp.CompiledNanosPerLookup <= 0 {
		t.Fatalf("timings unset: %+v", fp)
	}
	if fp.Speedup <= 1 {
		t.Errorf("compiled lookup (%.0fns) not faster than interpreted (%.0fns)",
			fp.CompiledNanosPerLookup, fp.InterpretedNanosPerLookup)
	}
	if fp.CompiledAllocsPerLookup > 0.01 {
		t.Errorf("compiled lookups allocate %.3f/lookup; zero-alloc guarantee broken",
			fp.CompiledAllocsPerLookup)
	}
	if fp.CompileMicros <= 0 {
		t.Errorf("compile cost unmeasured: %+v", fp)
	}
}
