package experiments

import (
	"fmt"
	"time"

	"janus/internal/core"
	"janus/internal/workload"
)

// The four topologies of Figs 11–13 and the five of Tables 3–4, matching
// the paper's choices.
var (
	figTopos   = []string{"Ans", "Cwix", "Internode", "Redbestel"}
	tableTopos = []string{"Ans", "Agis", "CrlNetServ", "Cwix", "Garr201008"}
)

// Fig11 sweeps the number of policies with endpoints/policy fixed and
// compares the full ILP (all candidate paths) against Janus (k=5 random
// paths) on four topologies. The paper reports Janus "significantly faster
// across all topologies", difference growing with policy count, with a 0%
// optimality gap throughout the sweep.
func Fig11(p Params) ([]Table, error) {
	p = p.withDefaults()
	policyCounts := []int{p.scaled(10), p.scaled(20), p.scaled(30), p.scaled(40), p.scaled(50)}
	eps := 2 // paper: 20; scaled with the smaller policy counts

	var tables []Table
	for _, topoName := range figTopos {
		t := Table{
			Title:  fmt.Sprintf("Fig 11 — %s: runtime vs number of policies (%d endpoints each)", topoName, eps),
			Header: []string{"policies", "ILP time", "Janus time", "ILP sat", "Janus sat", "gap"},
		}
		for _, n := range policyCounts {
			spec := workload.Spec{Policies: n, EndpointsPerPolicy: eps}
			ilp, janus, err := comparePair(p, topoName, spec)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s n=%d: %w", topoName, n, err)
			}
			gap := pct(float64(ilp.satisfied-janus.satisfied), float64(ilp.satisfied))
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmtDur(ilp.duration), fmtDur(janus.duration),
				fmt.Sprint(ilp.satisfied), fmt.Sprint(janus.satisfied), fmtPct(gap),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 fixes the policy count and sweeps endpoints per policy.
func Fig12(p Params) ([]Table, error) {
	p = p.withDefaults()
	policies := p.scaled(25)
	epsSweep := []int{1, 2, 3, 4, 5} // paper: 10..50

	var tables []Table
	for _, topoName := range figTopos {
		t := Table{
			Title:  fmt.Sprintf("Fig 12 — %s: runtime vs endpoints per policy (%d policies)", topoName, policies),
			Header: []string{"endpoints", "ILP time", "Janus time", "ILP sat", "Janus sat"},
		}
		for _, eps := range epsSweep {
			spec := workload.Spec{Policies: policies, EndpointsPerPolicy: eps}
			ilp, janus, err := comparePair(p, topoName, spec)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s eps=%d: %w", topoName, eps, err)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(eps), fmtDur(ilp.duration), fmtDur(janus.duration),
				fmt.Sprint(ilp.satisfied), fmt.Sprint(janus.satisfied),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13 reports the optimality gap of the endpoints sweep; the paper keeps
// it under 20%.
func Fig13(p Params) ([]Table, error) {
	p = p.withDefaults()
	policies := p.scaled(25)
	epsSweep := []int{1, 2, 3, 4, 5}
	t := Table{
		Title:  fmt.Sprintf("Fig 13 — optimality gap vs endpoints per policy (%d policies)", policies),
		Header: append([]string{"endpoints"}, figTopos...),
	}
	for _, eps := range epsSweep {
		row := []string{fmt.Sprint(eps)}
		for _, topoName := range figTopos {
			spec := workload.Spec{Policies: policies, EndpointsPerPolicy: eps}
			ilp, janus, err := comparePair(p, topoName, spec)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s eps=%d: %w", topoName, eps, err)
			}
			gap := pct(float64(ilp.satisfied-janus.satisfied), float64(ilp.satisfied))
			row = append(row, fmtPct(gap))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Table3 sweeps the candidate-path count k on five topologies, reporting
// the optimality gap vs the full ILP. The paper's shape: gap grows as k
// shrinks (0% at k=20 down to ~25–37% at k=1), and k=5 balances gap vs
// runtime.
func Table3(p Params) ([]Table, error) {
	t3, _, err := table34(p)
	return []Table{t3}, err
}

// Table4 reports the runtime reduction of the same sweep: fewer candidate
// paths means a smaller model and a large reduction vs the full ILP.
func Table4(p Params) ([]Table, error) {
	_, t4, err := table34(p)
	return []Table{t4}, err
}

// Table34 runs the k sweep once and renders both paper tables.
func Table34(p Params) ([]Table, error) {
	t3, t4, err := table34(p)
	if err != nil {
		return nil, err
	}
	return []Table{t3, t4}, nil
}

func table34(p Params) (Table, Table, error) {
	p = p.withDefaults()
	policies := p.scaled(30)
	eps := 3 // paper: 40 endpoints with 1000 policies
	kSweep := []int{20, 10, 5, 2, 1}

	t3 := Table{
		Title:  fmt.Sprintf("Table 3 — optimality gap (%%) vs number of candidate paths (%d policies, %d endpoints)", policies, eps),
		Header: append([]string{"topology"}, kHeader(kSweep)...),
	}
	t4 := Table{
		Title:  "Table 4 — runtime reduction (%) vs number of candidate paths",
		Header: append([]string{"topology"}, kHeader(kSweep)...),
	}
	for _, topoName := range tableTopos {
		spec := workload.Spec{Policies: policies, EndpointsPerPolicy: eps}
		ilp, err := avg(p, func(seed int64) (measurement, error) {
			s := spec
			s.Seed = seed
			return solveOnce(topoName, s, ilpConfig(seed), 4*p.TimeLimit)
		})
		if err != nil {
			return Table{}, Table{}, fmt.Errorf("table3/4 %s ilp: %w", topoName, err)
		}
		row3 := []string{topoName}
		row4 := []string{topoName}
		for _, k := range kSweep {
			kk := k
			m, err := avg(p, func(seed int64) (measurement, error) {
				s := spec
				s.Seed = seed
				return solveOnce(topoName, s, core.Config{CandidatePaths: kk, Seed: seed}, p.TimeLimit)
			})
			if err != nil {
				return Table{}, Table{}, fmt.Errorf("table3/4 %s k=%d: %w", topoName, k, err)
			}
			gap := pct(float64(ilp.satisfied-m.satisfied), float64(ilp.satisfied))
			reduction := pct(float64(ilp.duration-m.duration), float64(ilp.duration))
			row3 = append(row3, fmtPct(gap))
			row4 = append(row4, fmtPct(reduction))
		}
		t3.Rows = append(t3.Rows, row3)
		t4.Rows = append(t4.Rows, row4)
	}
	return t3, t4, nil
}

func kHeader(ks []int) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("%d paths", k)
	}
	return out
}

// comparePair measures the full ILP and the Janus heuristic (k=5) on the
// same workload. The ILP baseline runs with the stall cutoff disabled and
// a quadrupled time budget: it stands in for the paper's exact solver, and
// its runtime being larger IS the result Figs 11–12 report.
func comparePair(p Params, topoName string, spec workload.Spec) (ilp, janus measurement, err error) {
	ilp, err = avg(p, func(seed int64) (measurement, error) {
		s := spec
		s.Seed = seed
		return solveOnce(topoName, s, ilpConfig(seed), 4*p.TimeLimit)
	})
	if err != nil {
		return
	}
	janus, err = avg(p, func(seed int64) (measurement, error) {
		s := spec
		s.Seed = seed
		return solveOnce(topoName, s, core.Config{CandidatePaths: 5, Seed: seed}, p.TimeLimit)
	})
	return
}

// ilpConfig is the exact-baseline solver profile.
func ilpConfig(seed int64) core.Config {
	return core.Config{CandidatePaths: 0, Seed: seed, StallNodes: -1, MaxNodes: 200000}
}

var _ = time.Second
