package experiments

import (
	"fmt"
	"runtime"
	"time"

	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/workload"
)

// FastpathBench is the flow-arrival section of the janusbench JSON
// document: the same installed fig11 configuration probed through the
// interpreted per-hop walk and through the compiled fast path
// (internal/fastpath), so the steady-state classification speedup — and
// any regression in it — is measured where flows actually arrive.
type FastpathBench struct {
	Topology string `json:"topology"`
	Policies int    `json:"policies"`
	// Flows is the number of (src,dst) pairs in the compiled structure;
	// Probes the number of distinct probe tuples cycled by the measurement.
	Flows  int `json:"flows"`
	Probes int `json:"probes"`
	// InterpretedNanosPerLookup / CompiledNanosPerLookup are mean lookup
	// latencies; Speedup is their ratio (≥10x is the ISSUE 9 floor).
	InterpretedNanosPerLookup float64 `json:"interpreted_nanos_per_lookup"`
	CompiledNanosPerLookup    float64 `json:"compiled_nanos_per_lookup"`
	Speedup                   float64 `json:"speedup"`
	// CompiledAllocsPerLookup must be 0: the zero-alloc guarantee measured
	// end-to-end rather than per-call (MemStats Mallocs delta).
	CompiledAllocsPerLookup float64 `json:"compiled_allocs_per_lookup"`
	// CompileMicros is the cost of one Recompile of the installed rule set —
	// the price every reconfiguration pays to publish a new generation.
	CompileMicros float64 `json:"compile_micros"`
}

// RunFastpathBench installs the solved fig11 workload on a simulated
// dataplane and measures interpreted vs compiled lookup latency over the
// configuration's own hard flows, probing the classifiers they carry.
func RunFastpathBench(p Params, topoName string) (*FastpathBench, error) {
	p = p.withDefaults()
	policies := p.scaled(50)
	w, err := workload.Generate(topoName, workload.Spec{
		Policies: policies, EndpointsPerPolicy: 2, Seed: p.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("fastpath bench workload: %w", err)
	}
	conf, err := core.New(w.Topo, w.Graph, core.Config{
		CandidatePaths: 5, Seed: p.Seed, Workers: 1, TimeLimit: p.TimeLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("fastpath bench configurator: %w", err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		return nil, fmt.Errorf("fastpath bench solve: %w", err)
	}
	net := dataplane.NewNetwork(w.Topo)
	adapter := dataplane.NewGraphAdapter(w.Graph)
	rules := dataplane.CompileRules(w.Topo, adapter, res)
	if _, err := net.Apply(rules, res.Assignments); err != nil {
		return nil, fmt.Errorf("fastpath bench install: %w", err)
	}

	// Probe the installed flows with the classifiers their rules carry —
	// the steady state is flows that exist, not scans for ones that don't.
	type probe struct {
		src, dst string
		proto    policy.Protocol
		port     int
	}
	seen := map[[2]string]bool{}
	var probes []probe
	for _, a := range res.Assignments {
		if a.Role != core.HardEdge || seen[[2]string{a.Src, a.Dst}] {
			continue
		}
		seen[[2]string{a.Src, a.Dst}] = true
		m := adapter.MatchFor(a.Policy, a.EdgeIdx)
		pr := probe{src: a.Src, dst: a.Dst, proto: policy.TCP, port: 80}
		if m.Proto != "" && m.Proto != policy.Any {
			pr.proto = m.Proto
		}
		if len(m.Ports) > 0 {
			pr.port = m.Ports[0]
		}
		probes = append(probes, pr)
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("fastpath bench: no hard flows to probe on %s", topoName)
	}

	b := &FastpathBench{Topology: topoName, Policies: policies, Probes: len(probes)}

	// Recompile once more for a clean timing of the publish cost (Apply
	// already compiled as part of its settle).
	start := time.Now()
	c := net.Recompile()
	b.CompileMicros = float64(time.Since(start).Microseconds())
	b.Flows = c.Flows()

	// Each side cycles the probe set until its time budget elapses; the
	// budgets are sized so even the slow interpreted side stays sub-second.
	interpNs := measureLookups(300*time.Millisecond, len(probes), func(i int) {
		p := probes[i]
		_, _ = net.Lookup(p.src, p.dst, p.proto, p.port)
	})
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	compiledNs, compiledCount := measureLookupsN(150*time.Millisecond, len(probes), func(i int) {
		p := probes[i]
		_, _ = c.Lookup(p.src, p.dst, p.proto, p.port)
	})
	runtime.ReadMemStats(&ms1)
	b.InterpretedNanosPerLookup = interpNs
	b.CompiledNanosPerLookup = compiledNs
	b.CompiledAllocsPerLookup = float64(ms1.Mallocs-ms0.Mallocs) / float64(compiledCount)
	if compiledNs > 0 {
		b.Speedup = interpNs / compiledNs
	}
	return b, nil
}

// measureLookups cycles fn over [0,n) probe indices until the budget
// elapses and returns mean nanoseconds per call.
func measureLookups(budget time.Duration, n int, fn func(i int)) float64 {
	ns, _ := measureLookupsN(budget, n, fn)
	return ns
}

func measureLookupsN(budget time.Duration, n int, fn func(i int)) (float64, int64) {
	var count int64
	start := time.Now()
	for time.Since(start) < budget {
		// Full passes between clock reads keep timer overhead negligible.
		for i := 0; i < n; i++ {
			fn(i)
		}
		count += int64(n)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(count), count
}
