package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	//janus:allow(layercheck): the lp_micro bench section measures the solver layer directly, bypassing core on purpose
	"janus/internal/lp"
)

// LPMicroBench is the simplex-level microbenchmark embedded in the
// janusbench JSON document (schema_version ≥ 2). It captures the two
// latencies branch and bound is built from — a cold solve from scratch and
// a warm re-solve after one bound flip — plus the steady-state allocation
// rate of the warm path, so a solver regression is caught at the layer
// that caused it rather than inferred from end-to-end wall clock.
type LPMicroBench struct {
	Vars int `json:"vars"`
	Rows int `json:"rows"`
	// ColdMicros is the mean cold-solve latency in microseconds.
	ColdMicros float64 `json:"cold_micros"`
	// WarmMicros is the mean warm re-solve latency (bound flip + warm
	// start from the base basis) in microseconds.
	WarmMicros float64 `json:"warm_micros"`
	// WarmAllocsPerSolve is the mean heap allocations per warm re-solve.
	WarmAllocsPerSolve float64 `json:"warm_allocs_per_solve"`
	// WarmIterations is the mean simplex pivot count per warm re-solve.
	WarmIterations float64 `json:"warm_iterations"`
}

// lpMicroProblem mirrors the packing LP of internal/lp's microbenchmarks:
// a Janus-relaxation-shaped instance, deterministic across runs.
func lpMicroProblem(n, m int) *lp.Problem {
	rng := rand.New(rand.NewSource(99))
	p := lp.NewProblem()
	for i := 0; i < n; i++ {
		p.AddVariable(0, 1+rng.Float64()*3, rng.Float64()*10)
	}
	for r := 0; r < m; r++ {
		terms := make([]lp.Term, 0, n/3)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3 {
				terms = append(terms, lp.Term{Var: v, Coef: 0.2 + rng.Float64()*2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: rng.Intn(n), Coef: 1})
		}
		if _, err := p.AddConstraint(lp.LE, 3+rng.Float64()*float64(n)/4, terms); err != nil {
			panic(err)
		}
	}
	return p
}

// RunLPMicro measures the LP microbenchmark with iteration counts chosen
// for stable sub-second runtime.
func RunLPMicro() (*LPMicroBench, error) {
	const n, m, coldIters, warmIters = 150, 60, 50, 2000
	b := &LPMicroBench{Vars: n, Rows: m}

	cold := lpMicroProblem(n, m)
	start := time.Now()
	for i := 0; i < coldIters; i++ {
		sol, err := cold.Solve(lp.Options{})
		if err != nil {
			return nil, fmt.Errorf("lpmicro cold: %w", err)
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("lpmicro cold: status %v", sol.Status)
		}
	}
	b.ColdMicros = float64(time.Since(start).Microseconds()) / coldIters

	warm := lpMicroProblem(n, m)
	base, err := warm.Solve(lp.Options{})
	if err != nil || base.Status != lp.Optimal {
		return nil, fmt.Errorf("lpmicro base: %v", err)
	}
	// The branch-and-bound node pattern (mirrors BenchmarkLPWarmResolve):
	// each round is a parent→child→parent excursion. Fixing variable 2 —
	// basic at the parent optimum — forces real pivots on the child leg;
	// the return leg re-solves at the parent basis after one
	// refactorization. Both legs count as solves in the averages.
	lo0, up0 := warm.Bounds(2)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	iters := 0
	start = time.Now()
	for i := 0; i < warmIters/2; i++ {
		if err := warm.SetBounds(2, 0, 0); err != nil {
			return nil, err
		}
		child, err := warm.Solve(lp.Options{WarmStart: base.Basis})
		if err != nil || child.Status != lp.Optimal {
			return nil, fmt.Errorf("lpmicro warm child: %v", err)
		}
		if err := warm.SetBounds(2, lo0, up0); err != nil {
			return nil, err
		}
		back, err := warm.Solve(lp.Options{WarmStart: base.Basis})
		if err != nil || back.Status != lp.Optimal {
			return nil, fmt.Errorf("lpmicro warm restore: %v", err)
		}
		iters += child.Iterations + back.Iterations
	}
	solves := 2 * (warmIters / 2)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	b.WarmMicros = float64(elapsed.Microseconds()) / float64(solves)
	b.WarmAllocsPerSolve = float64(ms1.Mallocs-ms0.Mallocs) / float64(solves)
	b.WarmIterations = float64(iters) / float64(solves)
	return b, nil
}
