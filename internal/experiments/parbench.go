package experiments

import (
	"fmt"
	"runtime"
	"time"

	"janus/internal/core"
	"janus/internal/workload"
)

// BenchEntry is one (topology, worker-count) comparison of the fig11
// 50-policy workload: the same instance solved serially and with the
// parallel branch-and-bound worker pool.
type BenchEntry struct {
	Topology        string  `json:"topology"`
	Policies        int     `json:"policies"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	SerialNodes     int     `json:"serial_nodes"`
	ParallelNodes   int     `json:"parallel_nodes"`
	SerialSat       int     `json:"serial_satisfied"`
	ParallelSat     int     `json:"parallel_satisfied"`
	// Allocations per end-to-end solve (runtime.MemStats Mallocs delta
	// around Configure), schema_version ≥ 2. Zero in older baselines.
	SerialAllocsPerSolve   uint64 `json:"serial_allocs_per_solve,omitempty"`
	ParallelAllocsPerSolve uint64 `json:"parallel_allocs_per_solve,omitempty"`
}

// BenchSchemaVersion is the current janusbench JSON schema:
// v2 added schema_version itself, allocations-per-solve, and lp_micro.
// cmd/benchdiff accepts older baselines and skips the newer gates.
const BenchSchemaVersion = 2

// Bench is the janusbench -json document, committed as BENCH.json and
// compared by cmd/benchdiff. Hardware fields make cross-machine numbers
// interpretable: a 1-core container cannot show wall-clock speedup no
// matter how good the worker pool is.
type Bench struct {
	SchemaVersion int           `json:"schema_version"`
	GeneratedBy   string        `json:"generated_by"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Scale         float64       `json:"scale"`
	Seed          int64         `json:"seed"`
	Runs          int           `json:"runs"`
	Entries       []BenchEntry  `json:"entries"`
	LPMicro       *LPMicroBench `json:"lp_micro,omitempty"`
	// Fastpath is the compiled flow-classification section (fastpath.go),
	// absent in baselines recorded before it existed — cmd/benchdiff
	// phase-gates it like lp_micro.
	Fastpath *FastpathBench `json:"fastpath,omitempty"`
	// Delta is the incremental-reconfiguration section (deltabench.go),
	// phase-gated the same way.
	Delta *DeltaBench `json:"delta,omitempty"`
}

// benchMeasure solves the fig11-shaped workload once and reports duration,
// node count, satisfaction, and heap allocations during the solve (a
// MemStats Mallocs delta — other goroutines are quiescent in janusbench,
// so the delta is attributable to the solve).
func benchMeasure(topoName string, spec workload.Spec, workers int, timeLimit time.Duration) (time.Duration, int, int, uint64, error) {
	w, err := workload.Generate(topoName, spec)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	cfg := core.Config{CandidatePaths: 5, Seed: spec.Seed, Workers: workers, TimeLimit: timeLimit}
	conf, err := core.New(w.Topo, w.Graph, cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := conf.Configure(0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return dur, res.Stats.Nodes, res.SatisfiedCount(), ms1.Mallocs - ms0.Mallocs, nil
}

// RunParallelBench measures serial (Workers=1) vs parallel (Workers=workers)
// solves of the fig11 50-policy workload on Ans and Cwix, averaged over
// p.Runs seeds. Satisfaction counts are reported so a "speedup" produced by
// solving a different problem is visible immediately.
func RunParallelBench(p Params, workers int) (*Bench, error) {
	p = p.withDefaults()
	if workers <= 0 {
		workers = 4
	}
	b := &Bench{
		SchemaVersion: BenchSchemaVersion,
		GeneratedBy:   "janusbench -json",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Scale:         p.Scale,
		Seed:          p.Seed,
		Runs:          p.Runs,
	}
	micro, err := RunLPMicro()
	if err != nil {
		return nil, fmt.Errorf("parbench lp micro: %w", err)
	}
	b.LPMicro = micro
	fp, err := RunFastpathBench(p, "Cwix")
	if err != nil {
		return nil, fmt.Errorf("parbench fastpath: %w", err)
	}
	b.Fastpath = fp
	db, err := RunDeltaBench(p)
	if err != nil {
		return nil, fmt.Errorf("parbench delta: %w", err)
	}
	b.Delta = db
	policies := p.scaled(50)
	for _, topoName := range []string{"Ans", "Cwix"} {
		var serialDur, parDur time.Duration
		var serialNodes, parNodes, serialSat, parSat int
		var serialAllocs, parAllocs uint64
		for r := 0; r < p.Runs; r++ {
			spec := workload.Spec{Policies: policies, EndpointsPerPolicy: 2, Seed: p.Seed + int64(r)*7919}
			sd, sn, ss, sa, err := benchMeasure(topoName, spec, 1, p.TimeLimit)
			if err != nil {
				return nil, fmt.Errorf("parbench %s serial: %w", topoName, err)
			}
			pd, pn, ps, pa, err := benchMeasure(topoName, spec, workers, p.TimeLimit)
			if err != nil {
				return nil, fmt.Errorf("parbench %s parallel: %w", topoName, err)
			}
			serialDur += sd
			parDur += pd
			serialNodes += sn
			parNodes += pn
			serialSat += ss
			parSat += ps
			serialAllocs += sa
			parAllocs += pa
		}
		e := BenchEntry{
			Topology:               topoName,
			Policies:               policies,
			Workers:                workers,
			SerialSeconds:          serialDur.Seconds() / float64(p.Runs),
			ParallelSeconds:        parDur.Seconds() / float64(p.Runs),
			SerialNodes:            serialNodes / p.Runs,
			ParallelNodes:          parNodes / p.Runs,
			SerialSat:              serialSat / p.Runs,
			ParallelSat:            parSat / p.Runs,
			SerialAllocsPerSolve:   serialAllocs / uint64(p.Runs),
			ParallelAllocsPerSolve: parAllocs / uint64(p.Runs),
		}
		if e.ParallelSeconds > 0 {
			e.Speedup = e.SerialSeconds / e.ParallelSeconds
		}
		b.Entries = append(b.Entries, e)
	}
	return b, nil
}

// Render formats the bench as a text table for the non-JSON output path.
func (b *Bench) Render() Table {
	title := fmt.Sprintf("Parallel B&B — fig11 50-policy workload, serial vs %d workers (GOMAXPROCS=%d)",
		benchWorkers(b), b.GOMAXPROCS)
	if b.LPMicro != nil {
		title += fmt.Sprintf("\nLP micro (%dv×%dr): cold %.0fµs, warm %.1fµs, %.1f allocs/warm solve",
			b.LPMicro.Vars, b.LPMicro.Rows, b.LPMicro.ColdMicros, b.LPMicro.WarmMicros, b.LPMicro.WarmAllocsPerSolve)
	}
	if b.Fastpath != nil {
		title += fmt.Sprintf("\nFastpath (%s, %d flows): interpreted %.0fns, compiled %.0fns (%.0fx), compile %.0fµs, %.2f allocs/lookup",
			b.Fastpath.Topology, b.Fastpath.Flows, b.Fastpath.InterpretedNanosPerLookup,
			b.Fastpath.CompiledNanosPerLookup, b.Fastpath.Speedup, b.Fastpath.CompileMicros,
			b.Fastpath.CompiledAllocsPerLookup)
	}
	if b.Delta != nil {
		for _, e := range b.Delta.Entries {
			title += fmt.Sprintf("\nDelta (%s, %s): full %.1fms, delta %.1fms (%.1fx), %.1f affected of %d",
				e.Topology, e.Event, e.FullMillis, e.DeltaMillis, e.Speedup, e.AffectedPolicies, e.Policies)
		}
	}
	t := Table{
		Title:  title,
		Header: []string{"topology", "serial", "parallel", "speedup", "serial nodes", "par nodes"},
	}
	for _, e := range b.Entries {
		t.Rows = append(t.Rows, []string{
			e.Topology,
			fmt.Sprintf("%.3fs", e.SerialSeconds),
			fmt.Sprintf("%.3fs", e.ParallelSeconds),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprint(e.SerialNodes),
			fmt.Sprint(e.ParallelNodes),
		})
	}
	return t
}

func benchWorkers(b *Bench) int {
	if len(b.Entries) > 0 {
		return b.Entries[0].Workers
	}
	return 0
}
