package experiments

import (
	"context"
	"fmt"
	"time"

	"janus/internal/core"
	"janus/internal/topo"
	"janus/internal/workload"
)

// DeltaBenchEntry compares one runtime event served by a full re-solve vs
// the incremental (delta) path on identically seeded twin instances: same
// topology, same policies, same mutation.
type DeltaBenchEntry struct {
	Topology string `json:"topology"`
	// Event is "move" (one source endpoint relocates) or "linkfail" (one
	// loaded switch-switch link is removed).
	Event    string `json:"event"`
	Policies int    `json:"policies"`
	// FullMillis / DeltaMillis are mean solve latencies over the runs;
	// Speedup is their ratio — the event cost scaling the delta layer buys.
	FullMillis  float64 `json:"full_millis"`
	DeltaMillis float64 `json:"delta_millis"`
	Speedup     float64 `json:"speedup"`
	// AffectedPolicies is the mean sub-model size; the full solve always
	// carries all Policies.
	AffectedPolicies float64 `json:"affected_policies"`
	// Satisfied counts expose a "speedup" won by solving a worse problem.
	FullSatisfied  int `json:"full_satisfied"`
	DeltaSatisfied int `json:"delta_satisfied"`
}

// DeltaBench is the incremental-reconfiguration section of the janusbench
// JSON document, absent in baselines recorded before it existed —
// cmd/benchdiff phase-gates it like lp_micro and fastpath.
type DeltaBench struct {
	Entries []DeltaBenchEntry `json:"entries"`
}

// deltaBenchEvent mutates twin worlds identically and returns the affected
// set computed from the delta twin's dependency index.
type deltaBenchEvent struct {
	name  string
	apply func(full, delta *deltaBenchWorld, ix *core.DepIndex) (map[int]bool, error)
}

// deltaBenchWorld is one of the twin instances: a solved fig11 workload
// with its configurator and previous result.
type deltaBenchWorld struct {
	w    *workload.Workload
	conf *core.Configurator
	prev *core.Result
}

func newDeltaBenchWorld(topoName string, spec workload.Spec, timeLimit time.Duration, maxDrop int) (*deltaBenchWorld, error) {
	w, err := workload.Generate(topoName, spec)
	if err != nil {
		return nil, err
	}
	conf, err := core.New(w.Topo, w.Graph, core.Config{
		CandidatePaths: 5, Seed: spec.Seed, Workers: 1, TimeLimit: timeLimit,
		DeltaMaxSatisfiedDrop: maxDrop,
	})
	if err != nil {
		return nil, err
	}
	prev, err := conf.Configure(0)
	if err != nil {
		return nil, err
	}
	return &deltaBenchWorld{w: w, conf: conf, prev: prev}, nil
}

// moveEvent relocates policy 0's first source endpoint to a different
// switch in both worlds. fig11 workloads give each policy dedicated
// endpoints, so the footprint is exactly one policy.
func moveEvent(full, delta *deltaBenchWorld, ix *core.DepIndex) (map[int]bool, error) {
	const ep = "p0-e0"
	cur, ok := full.w.Topo.EndpointByName(ep)
	if !ok {
		return nil, fmt.Errorf("endpoint %s missing", ep)
	}
	var to topo.NodeID = -1
	for _, id := range full.w.Topo.NodesOfKind(topo.Switch, "") {
		if id != cur.Attach {
			to = id
			break
		}
	}
	if to < 0 {
		return nil, fmt.Errorf("no switch to move %s to", ep)
	}
	for _, world := range []*deltaBenchWorld{full, delta} {
		if err := world.w.Topo.MoveEndpoint(ep, to); err != nil {
			return nil, err
		}
	}
	affected := map[int]bool{}
	ix.AffectedByEndpoint(ep, affected)
	return affected, nil
}

// linkFailEvent removes the least-loaded switch-switch link crossed by
// any assignment of the delta twin's previous result — the typical single
// link failure, whose footprint is a handful of policies, not a trunk —
// in both worlds, and invalidates exactly that link's cached path
// enumerations the way Runtime.FailLink does.
func linkFailEvent(full, delta *deltaBenchWorld, ix *core.DepIndex) (map[int]bool, error) {
	nodes := delta.w.Topo.Nodes
	load := map[[2]topo.NodeID]map[int]bool{}
	for _, a := range delta.prev.Assignments {
		for _, l := range a.Path.Links() {
			if nodes[l[0]].Kind != topo.Switch || nodes[l[1]].Kind != topo.Switch {
				continue
			}
			k := l
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			if load[k] == nil {
				load[k] = map[int]bool{}
			}
			load[k][a.Policy] = true
		}
	}
	var fail [2]topo.NodeID
	found := false
	for k, pids := range load {
		better := len(pids) < len(load[fail])
		tie := len(pids) == len(load[fail]) &&
			(k[0] < fail[0] || (k[0] == fail[0] && k[1] < fail[1]))
		if !found || better || tie {
			fail, found = k, true
		}
	}
	if !found {
		return nil, fmt.Errorf("no loaded switch-switch link to fail")
	}
	affected := map[int]bool{}
	ix.AffectedByLink(fail[0], fail[1], affected)
	for _, world := range []*deltaBenchWorld{full, delta} {
		if err := world.w.Topo.RemoveLink(fail[0], fail[1]); err != nil {
			return nil, err
		}
		world.conf.InvalidateLinkPaths(fail[0], fail[1])
	}
	return affected, nil
}

// RunDeltaBench measures full vs incremental event cost on the fig11
// workload: for each topology and event type, twin instances solve the
// same mutation — one through ReconfigureAt over all policies, one through
// DeltaReconfigureContext over the affected set — averaged over p.Runs
// seeds.
func RunDeltaBench(p Params) (*DeltaBench, error) {
	p = p.withDefaults()
	policies := p.scaled(50)
	events := []deltaBenchEvent{
		{name: "move", apply: moveEvent},
		{name: "linkfail", apply: linkFailEvent},
	}
	b := &DeltaBench{}
	for _, topoName := range []string{"Ans", "Cwix"} {
		for _, ev := range events {
			var fullDur, deltaDur time.Duration
			var affectedSum, fullSat, deltaSat int
			for r := 0; r < p.Runs; r++ {
				spec := workload.Spec{Policies: policies, EndpointsPerPolicy: 2, Seed: p.Seed + int64(r)*7919}
				full, err := newDeltaBenchWorld(topoName, spec, p.TimeLimit, 0)
				if err != nil {
					return nil, fmt.Errorf("deltabench %s full twin: %w", topoName, err)
				}
				// The delta twin gets an unbounded optimality guard: the
				// runtime's strict default would (correctly) fall back to a
				// full solve when the capacity-tight workload cannot re-fit
				// every affected policy into residual headroom, but the
				// bench measures the delta path itself — the satisfaction
				// gap is reported explicitly instead of gated.
				delta, err := newDeltaBenchWorld(topoName, spec, p.TimeLimit, policies)
				if err != nil {
					return nil, fmt.Errorf("deltabench %s delta twin: %w", topoName, err)
				}
				ix := core.BuildDepIndex(delta.w.Topo, delta.w.Graph, delta.prev)
				affected, err := ev.apply(full, delta, ix)
				if err != nil {
					return nil, fmt.Errorf("deltabench %s %s: %w", topoName, ev.name, err)
				}

				start := time.Now()
				fullRes, err := full.conf.ReconfigureAt(full.prev, 0)
				if err != nil {
					return nil, fmt.Errorf("deltabench %s %s full solve: %w", topoName, ev.name, err)
				}
				fullDur += time.Since(start)

				start = time.Now()
				deltaRes, err := delta.conf.DeltaReconfigureContext(context.Background(), delta.prev,
					core.DeltaRequest{Period: 0, Affected: affected})
				if err != nil {
					return nil, fmt.Errorf("deltabench %s %s delta solve: %w", topoName, ev.name, err)
				}
				deltaDur += time.Since(start)

				affectedSum += deltaRes.Delta.Affected
				fullSat += fullRes.SatisfiedCount()
				deltaSat += deltaRes.SatisfiedCount()
			}
			e := DeltaBenchEntry{
				Topology:         topoName,
				Event:            ev.name,
				Policies:         policies,
				FullMillis:       float64(fullDur.Microseconds()) / 1000 / float64(p.Runs),
				DeltaMillis:      float64(deltaDur.Microseconds()) / 1000 / float64(p.Runs),
				AffectedPolicies: float64(affectedSum) / float64(p.Runs),
				FullSatisfied:    fullSat / p.Runs,
				DeltaSatisfied:   deltaSat / p.Runs,
			}
			if e.DeltaMillis > 0 {
				e.Speedup = e.FullMillis / e.DeltaMillis
			}
			b.Entries = append(b.Entries, e)
		}
	}
	return b, nil
}
