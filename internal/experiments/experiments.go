// Package experiments regenerates every table and figure of the Janus
// paper's evaluation (§7). Each experiment builds the paper's workload
// shape (policy counts, endpoints per policy, candidate paths, time
// periods, priority classes) on the Zoo-equivalent topologies and reports
// the same rows/series the paper does.
//
// Sizes are scaled to a from-scratch simplex on laptop-class hardware via
// Params.Scale (1.0 = default reduced sizes); the sweep shapes — who wins,
// by roughly what factor, where crossovers fall — follow the paper. See
// EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"janus/internal/core"
	"janus/internal/workload"
)

// Params control experiment sizing.
type Params struct {
	// Scale multiplies policy counts (1.0 = reduced defaults; ~20 gives
	// paper-size sweeps given hours of compute).
	Scale float64
	// Seed drives workload randomness.
	Seed int64
	// Runs averages each measurement over this many seeds (paper: 10).
	Runs int
	// TimeLimit bounds each individual solve (safety net; 0 = 60s).
	TimeLimit time.Duration
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Runs <= 0 {
		p.Runs = 1
	}
	if p.TimeLimit <= 0 {
		p.TimeLimit = 15 * time.Second
	}
	return p
}

func (p Params) scaled(n int) int {
	v := int(float64(n)*p.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Experiment is one named, runnable experiment.
type Experiment struct {
	Name        string
	Description string
	Run         func(Params) ([]Table, error)
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"fig11", "runtime vs number of policies, ILP vs Janus (Fig 11)", Fig11},
	{"fig12", "runtime vs endpoints per policy, ILP vs Janus (Fig 12)", Fig12},
	{"fig13", "optimality gap vs endpoints per policy (Fig 13)", Fig13},
	{"table3", "candidate paths vs optimality gap (Table 3)", Table3},
	{"table4", "candidate paths vs runtime reduction (Table 4)", Table4},
	{"fig14", "warm start: endpoint changes vs path changes and time (Fig 14)", Fig14},
	{"fig15", "stateful policies: λ sweep of default/non-default coverage (Fig 15)", Fig15},
	{"table5", "temporal greedy vs independent re-solve (Table 5)", Table5},
	{"fig16", "weights as priorities: unconfigured by class (Fig 16)", Fig16},
	{"fig17", "negotiation: extra policies vs N and K (Fig 17)", Fig17},
	{"parbench", "parallel branch & bound: serial vs multi-worker solve times", ParBench},
}

// ParBench renders the parallel-solver benchmark as a table; janusbench
// -json writes the same data as BENCH.json.
func ParBench(p Params) ([]Table, error) {
	b, err := RunParallelBench(p, 4)
	if err != nil {
		return nil, err
	}
	return []Table{b.Render()}, nil
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	for _, e := range All {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// run measures one (topology, spec, config) solve.
type measurement struct {
	satisfied int
	duration  time.Duration
}

// solveOnce generates the workload and configures period 0.
func solveOnce(topoName string, spec workload.Spec, cfg core.Config, timeLimit time.Duration) (measurement, error) {
	w, err := workload.Generate(topoName, spec)
	if err != nil {
		return measurement{}, err
	}
	cfg.TimeLimit = timeLimit
	conf, err := core.New(w.Topo, w.Graph, cfg)
	if err != nil {
		return measurement{}, err
	}
	start := time.Now()
	res, err := conf.Configure(0)
	if err != nil {
		return measurement{}, err
	}
	return measurement{satisfied: res.SatisfiedCount(), duration: time.Since(start)}, nil
}

// avg runs f Runs times with varied seeds and averages.
func avg(p Params, f func(seed int64) (measurement, error)) (measurement, error) {
	var total measurement
	for r := 0; r < p.Runs; r++ {
		m, err := f(p.Seed + int64(r)*7919)
		if err != nil {
			return measurement{}, err
		}
		total.satisfied += m.satisfied
		total.duration += m.duration
	}
	total.satisfied /= p.Runs
	total.duration /= time.Duration(p.Runs)
	return total, nil
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// newRNG returns a seeded RNG for experiment-local randomness.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
