package experiments

import (
	"fmt"
	"time"

	"janus/internal/core"
	"janus/internal/workload"
)

// Fig14 measures warm-start behavior under endpoint churn (§7.2): after an
// initial configuration, move a growing number of endpoints and
// reconfigure warm (with path-change penalties), reporting the number of
// path changes and the time decrease relative to solving from scratch.
// The paper's shape: near-zero path changes for small change counts, and a
// crossover where warm start becomes slower than cold for large churn.
func Fig14(p Params) ([]Table, error) {
	p = p.withDefaults()
	policies := p.scaled(20)
	eps := 2
	changeSweep := []int{0, 2, 5, 10, 20, 40} // paper: 0..600 over 600 policies

	t := Table{
		Title: fmt.Sprintf("Fig 14 — warm start under endpoint churn (%d policies, %d endpoints each, Internode)", policies, eps),
		Header: []string{"endpoint changes", "path changes", "warm LP iters", "cold LP iters",
			"warm time", "cold time", "time decrease"},
	}
	for _, changes := range changeSweep {
		ch := changes
		var pathChanges, warmIters, coldIters int
		var warmDur, coldDur time.Duration
		for r := 0; r < p.Runs; r++ {
			seed := p.Seed + int64(r)*7919
			w, err := workload.Generate("Internode", workload.Spec{
				Policies: policies, EndpointsPerPolicy: eps, Seed: seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig14: %w", err)
			}
			conf, err := core.New(w.Topo, w.Graph, core.Config{
				CandidatePaths: 5, Seed: seed, TimeLimit: p.TimeLimit,
			})
			if err != nil {
				return nil, err
			}
			initial, err := conf.Configure(0)
			if err != nil {
				return nil, fmt.Errorf("fig14 initial: %w", err)
			}
			w.MoveRandomEndpoints(newRNG(seed+1), ch)

			start := time.Now()
			warm, err := conf.Reconfigure(initial)
			if err != nil {
				return nil, fmt.Errorf("fig14 warm: %w", err)
			}
			warmDur += time.Since(start)
			warmIters += warm.Stats.LPIterations

			start = time.Now()
			cold, err := conf.Configure(0)
			if err != nil {
				return nil, fmt.Errorf("fig14 cold: %w", err)
			}
			coldDur += time.Since(start)
			coldIters += cold.Stats.LPIterations
			pathChanges += core.CountPathChanges(initial, warm)
		}
		pathChanges /= p.Runs
		warmIters /= p.Runs
		coldIters /= p.Runs
		warmDur /= time.Duration(p.Runs)
		coldDur /= time.Duration(p.Runs)
		decrease := pct(float64(coldDur-warmDur), float64(coldDur))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ch), fmt.Sprint(pathChanges),
			fmt.Sprint(warmIters), fmt.Sprint(coldIters),
			fmtDur(warmDur), fmtDur(coldDur), fmtPct(decrease),
		})
	}
	return []Table{t}, nil
}

// Fig15 sweeps the soft-constraint penalty λ for stateful policies (§7.3):
// each policy has one default and two non-default escalation edges. Low λ
// keeps all defaults configured while still reserving a large share of
// escalation paths; high λ trades default coverage for reservations.
func Fig15(p Params) ([]Table, error) {
	p = p.withDefaults()
	policySweep := []int{p.scaled(5), p.scaled(10), p.scaled(15), p.scaled(20)}
	// λ > 1 makes an unreserved policy worth less than rejecting it
	// outright, so the trade-off between default coverage and reservations
	// becomes visible at the top of the sweep.
	lambdas := []float64{0.1, 0.2, 0.5, 1.0, 2.0}

	t := Table{
		Title:  "Fig 15 — stateful policies: % default and % non-default configured vs λ (Internode)",
		Header: []string{"policies", "lambda", "% default configured", "% non-default reserved"},
	}
	for _, n := range policySweep {
		for _, lambda := range lambdas {
			nn, ll := n, lambda
			var defSat, ndSat, runs int
			for r := 0; r < p.Runs; r++ {
				seed := p.Seed + int64(r)*7919
				w, err := workload.Generate("Internode", workload.Spec{
					Policies: nn, EndpointsPerPolicy: 2, StatefulEdges: 2, Seed: seed,
				})
				if err != nil {
					return nil, fmt.Errorf("fig15: %w", err)
				}
				conf, err := core.New(w.Topo, w.Graph, core.Config{
					CandidatePaths: 5, Seed: seed, Lambda: ll, TimeLimit: p.TimeLimit,
				})
				if err != nil {
					return nil, err
				}
				res, err := conf.Configure(0)
				if err != nil {
					return nil, fmt.Errorf("fig15 solve: %w", err)
				}
				defSat += res.SatisfiedCount()
				for pid, ok := range res.Configured {
					if ok && !res.SlackUsed[pid] {
						ndSat++
					}
				}
				runs += len(w.Graph.Policies)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(nn), fmt.Sprintf("%.1f", ll),
				fmtPct(pct(float64(defSat), float64(runs))),
				fmtPct(pct(float64(ndSat), float64(runs))),
			})
		}
	}
	return []Table{t}, nil
}

// Table5 compares the greedy temporal chain (§5.5) against independently
// re-solving each period: configured policies, % reduction in cross-period
// path changes (paper: >90%), and runtime. The joint optimization (Eqn 9)
// is reported on the smallest instance only — the paper's joint run never
// finished.
func Table5(p Params) ([]Table, error) {
	p = p.withDefaults()
	policySweep := []int{p.scaled(10), p.scaled(15), p.scaled(20), p.scaled(25)}
	periods := 5

	t := Table{
		Title:  fmt.Sprintf("Table 5 — temporal greedy vs independent re-solve (%d periods, Internode)", periods),
		Header: []string{"policies", "configured (greedy)", "path changes (greedy)", "path changes (indep)", "reduction", "time (greedy)"},
	}
	for _, n := range policySweep {
		nn := n
		var greedyChanges, indepChanges, configured int
		var dur time.Duration
		for r := 0; r < p.Runs; r++ {
			seed := p.Seed + int64(r)*7919
			greedy, indep, err := temporalPair(nn, periods, seed, p.TimeLimit)
			if err != nil {
				return nil, fmt.Errorf("table5 n=%d: %w", nn, err)
			}
			greedyChanges += greedy.PathChanges
			indepChanges += indep.PathChanges
			configured += greedy.TotalConfigured
			dur += greedy.Duration
		}
		greedyChanges /= p.Runs
		indepChanges /= p.Runs
		configured /= p.Runs
		dur /= time.Duration(p.Runs)
		reduction := pct(float64(indepChanges-greedyChanges), float64(indepChanges))
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nn), fmt.Sprint(configured),
			fmt.Sprint(greedyChanges), fmt.Sprint(indepChanges),
			fmtPct(reduction), fmtDur(dur),
		})
	}
	return []Table{t}, nil
}

func temporalPair(policies, periods int, seed int64, limit time.Duration) (greedy, indep *core.TemporalResult, err error) {
	mk := func() (*core.Configurator, error) {
		w, err := workload.Generate("Internode", workload.Spec{
			Policies: policies, EndpointsPerPolicy: 2, TimePeriods: periods, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return core.New(w.Topo, w.Graph, core.Config{
			CandidatePaths: 5, Seed: seed, TimeLimit: limit,
		})
	}
	confG, err := mk()
	if err != nil {
		return nil, nil, err
	}
	greedy, err = confG.ConfigureTemporal()
	if err != nil {
		return nil, nil, err
	}
	confI, err := mk()
	if err != nil {
		return nil, nil, err
	}
	indep, err = confI.ConfigureTemporalIndependent()
	return greedy, indep, err
}

// Fig16 splits policies across three priority classes with weights 8/4/2
// and grows the load until the network saturates; the unconfigured
// policies should concentrate in the low class first, then medium, with
// high-priority policies rejected last (§7.5).
func Fig16(p Params) ([]Table, error) {
	p = p.withDefaults()
	policySweep := []int{p.scaled(15), p.scaled(25), p.scaled(35), p.scaled(45)}

	t := Table{
		Title:  "Fig 16 — unconfigured policies by priority class (weights 8/4/2, Ans)",
		Header: []string{"policies", "total unconfigured", "high", "med", "low"},
	}
	for _, n := range policySweep {
		nn := n
		var unHigh, unMed, unLow int
		for r := 0; r < p.Runs; r++ {
			seed := p.Seed + int64(r)*7919
			w, err := workload.Generate("Ans", workload.Spec{
				Policies: nn, EndpointsPerPolicy: 2, Seed: seed,
				PriorityClasses: []float64{8, 4, 2},
			})
			if err != nil {
				return nil, fmt.Errorf("fig16: %w", err)
			}
			conf, err := core.New(w.Topo, w.Graph, core.Config{
				CandidatePaths: 5, Seed: seed, TimeLimit: p.TimeLimit,
			})
			if err != nil {
				return nil, err
			}
			res, err := conf.Configure(0)
			if err != nil {
				return nil, fmt.Errorf("fig16 solve: %w", err)
			}
			for _, pol := range w.Graph.Policies {
				if res.Configured[pol.ID] {
					continue
				}
				switch pol.Weight {
				case 8:
					unHigh++
				case 4:
					unMed++
				default:
					unLow++
				}
			}
		}
		unHigh /= p.Runs
		unMed /= p.Runs
		unLow /= p.Runs
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nn), fmt.Sprint(unHigh + unMed + unLow),
			fmt.Sprint(unHigh), fmt.Sprint(unMed), fmt.Sprint(unLow),
		})
	}
	return []Table{t}, nil
}

// Fig17 evaluates the negotiation strategy (§5.6 / §7.6) on a congested
// temporal workload: extra configured policies as N varies with K=100%,
// and as K varies with N=5%. The paper's shape: a peak around N=5%
// (larger shifts run out of headroom) and a plateau after K=60%.
func Fig17(p Params) ([]Table, error) {
	p = p.withDefaults()
	policies := p.scaled(30)
	periods := 4

	nSweep := []float64{1, 2, 5, 10, 20, 40}
	kSweep := []float64{20, 40, 60, 80, 100}

	// The §7.6 evaluation runs "under very congested conditions": heavier
	// per-policy bandwidth on the small Ans topology so a meaningful share
	// of policies is rejected and shifting bandwidth across periods can
	// admit them.
	mk := func(seed int64) (*core.Configurator, error) {
		w, err := workload.Generate("Ans", workload.Spec{
			Policies: policies, EndpointsPerPolicy: 2, TimePeriods: periods,
			MinBW: 20, MaxBW: 40, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return core.New(w.Topo, w.Graph, core.Config{
			CandidatePaths: 5, Seed: seed, TimeLimit: p.TimeLimit,
		})
	}

	tN := Table{
		Title:  fmt.Sprintf("Fig 17 (left) — extra configured policies vs N (K=100%%, %d policies, %d periods)", policies, periods),
		Header: []string{"N (%)", "baseline configured", "extra configured", "proposals"},
	}
	tK := Table{
		Title:  "Fig 17 (right) — extra configured policies vs K (N=5%)",
		Header: []string{"K (%)", "baseline configured", "extra configured", "proposals"},
	}
	run := func(K, N float64) (base, extra, props int, err error) {
		for r := 0; r < p.Runs; r++ {
			seed := p.Seed + int64(r)*7919
			conf, err := mk(seed)
			if err != nil {
				return 0, 0, 0, err
			}
			baseline, err := conf.ConfigureTemporal()
			if err != nil {
				return 0, 0, 0, err
			}
			nego, err := conf.Negotiate(baseline, K, N)
			if err != nil {
				return 0, 0, 0, err
			}
			base += baseline.TotalConfigured
			extra += nego.ExtraConfigured
			props += len(nego.Proposals)
		}
		return base / p.Runs, extra / p.Runs, props / p.Runs, nil
	}
	for _, n := range nSweep {
		base, extra, props, err := run(100, n)
		if err != nil {
			return nil, fmt.Errorf("fig17 N=%g: %w", n, err)
		}
		tN.Rows = append(tN.Rows, []string{
			fmt.Sprintf("%.0f", n), fmt.Sprint(base), fmt.Sprint(extra), fmt.Sprint(props),
		})
	}
	for _, k := range kSweep {
		base, extra, props, err := run(k, 5)
		if err != nil {
			return nil, fmt.Errorf("fig17 K=%g: %w", k, err)
		}
		tK.Rows = append(tK.Rows, []string{
			fmt.Sprintf("%.0f", k), fmt.Sprint(base), fmt.Sprint(extra), fmt.Sprint(props),
		})
	}
	return []Table{tN, tK}, nil
}
