package traffic

import (
	"math"
	"testing"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// congested builds a two-switch network with one 100 Mbps link, a reserved
// 60 Mbps policy flow and room for best-effort cross traffic.
func congested(t *testing.T) (*topo.Topology, *dataplane.Network) {
	t.Helper()
	tp := topo.NewTopology("congested")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	if err := tp.AddLink(a, b, 100); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		name, label string
		at          topo.NodeID
	}{
		{"p1", "Prio", a}, {"e1", "Bulk", a}, {"e2", "Bulk2", a}, {"srv", "Srv", b},
	} {
		if err := tp.AddEndpoint(ep.name, ep.at, ep.label); err != nil {
			t.Fatal(err)
		}
	}
	// One QoS policy with a 60 Mbps guarantee; two best-effort policies
	// with no bandwidth requirement.
	gp := policy.NewGraph("prio")
	gp.AddEdge(policy.Edge{Src: "Prio", Dst: "Srv", QoS: policy.QoS{BandwidthMbps: 60}})
	gb := policy.NewGraph("bulk")
	gb.AddEdge(policy.Edge{Src: "Bulk", Dst: "Srv"})
	gb2 := policy.NewGraph("bulk2")
	gb2.AddEdge(policy.Edge{Src: "Bulk2", Dst: "Srv"})
	cg, err := compose.New(nil).Compose(gp, gb, gb2)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(tp, cg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 3 {
		t.Fatalf("want all 3 policies configured, got %d", res.SatisfiedCount())
	}
	n := dataplane.NewNetwork(tp)
	n.Apply(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), res), res.Assignments)
	return tp, n
}

func TestGuaranteeUnderCongestion(t *testing.T) {
	tp, n := congested(t)
	res, err := Simulate(tp, n, []Flow{
		{Src: "p1", Dst: "srv", Proto: policy.TCP, Port: 80, DemandMbps: 60},
		{Src: "e1", Dst: "srv", Proto: policy.TCP, Port: 80, DemandMbps: 100},
		{Src: "e2", Dst: "srv", Proto: policy.TCP, Port: 80, DemandMbps: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.GuaranteeViolations(); len(v) != 0 {
		t.Fatalf("guarantee violations under congestion: %+v", v)
	}
	byName := allocationsByName(res)
	prio := byName["p1"]
	if !prio.Delivered || prio.RateMbps < 60-1e-6 {
		t.Errorf("reserved flow rate = %v, want >= 60", prio.RateMbps)
	}
	// The two bulk flows split the leftover 40 Mbps max-min fairly.
	bulk1, bulk2 := byName["e1"], byName["e2"]
	if math.Abs(bulk1.RateMbps-bulk2.RateMbps) > 1e-6 {
		t.Errorf("bulk flows unequal: %v vs %v", bulk1.RateMbps, bulk2.RateMbps)
	}
	if math.Abs(bulk1.RateMbps-20) > 1e-6 {
		t.Errorf("bulk rate = %v, want 20 (half of the 40 Mbps leftover)", bulk1.RateMbps)
	}
	// Link fully used, not overloaded.
	if len(res.Links) == 0 {
		t.Fatal("no link loads reported")
	}
	for _, l := range res.Links {
		if l.Carried > l.Capacity+1e-6 {
			t.Errorf("link %d->%d overloaded: %v > %v", l.From, l.To, l.Carried, l.Capacity)
		}
	}
}

func TestUnderloadedFlowsGetDemand(t *testing.T) {
	tp, n := congested(t)
	res, err := Simulate(tp, n, []Flow{
		{Src: "p1", Dst: "srv", Proto: policy.TCP, Port: 80, DemandMbps: 10},
		{Src: "e1", Dst: "srv", Proto: policy.TCP, Port: 80, DemandMbps: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocations {
		if !a.Delivered {
			t.Fatalf("flow %s->%s blackholed", a.Flow.Src, a.Flow.Dst)
		}
		if math.Abs(a.RateMbps-a.Flow.DemandMbps) > 1e-6 {
			t.Errorf("underloaded flow %s rate %v != demand %v",
				a.Flow.Src, a.RateMbps, a.Flow.DemandMbps)
		}
	}
}

func TestBlackholedFlowReported(t *testing.T) {
	tp, n := congested(t)
	res, err := Simulate(tp, n, []Flow{
		{Src: "p1", Dst: "srv", Proto: policy.UDP, Port: 9999, DemandMbps: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The congested() policies carry match-all classifiers, so UDP is
	// actually admitted; use an unknown endpoint instead to force a
	// blackhole... the simplest deterministic blackhole is a flow between
	// endpoints with no policy: srv -> p1 (no reverse policy).
	res, err = Simulate(tp, n, []Flow{
		{Src: "srv", Dst: "p1", Proto: policy.TCP, Port: 80, DemandMbps: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations[0].Delivered {
		t.Error("reverse flow without policy should blackhole")
	}
}

func TestInvalidDemand(t *testing.T) {
	tp, n := congested(t)
	if _, err := Simulate(tp, n, []Flow{{Src: "p1", Dst: "srv", DemandMbps: 0}}); err == nil {
		t.Error("zero demand should error")
	}
}

func TestGuaranteeViolationDetector(t *testing.T) {
	r := &Result{Allocations: []Allocation{
		{Flow: Flow{DemandMbps: 50}, ReservedMbps: 40, RateMbps: 30, Delivered: true}, // violated
		{Flow: Flow{DemandMbps: 50}, ReservedMbps: 40, RateMbps: 40, Delivered: true}, // ok
		{Flow: Flow{DemandMbps: 10}, ReservedMbps: 40, RateMbps: 10, Delivered: true}, // demand-bound ok
		{Flow: Flow{DemandMbps: 50}, ReservedMbps: 0, RateMbps: 1, Delivered: true},   // best-effort
	}}
	if got := len(r.GuaranteeViolations()); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
}

func allocationsByName(res *Result) map[string]Allocation {
	out := map[string]Allocation{}
	for _, a := range res.Allocations {
		out[a.Flow.Src] = a
	}
	return out
}
