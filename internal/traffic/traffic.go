// Package traffic is a flow-level simulator validating that a configured
// dataplane actually delivers its QoS guarantees: flows are routed by the
// installed rules, reserved queue bandwidth is granted first (the
// rate-limited queues of §6 enforce minimum-bandwidth policies), and the
// remaining capacity is shared max-min fairly among unreserved demand
// (progressive filling).
//
// The simulator answers the end-to-end question behind the paper's QoS
// claims: under congestion, does every configured policy's flow still see
// its minimum bandwidth?
package traffic

import (
	"fmt"
	"math"
	"sort"

	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Flow is one offered traffic flow.
type Flow struct {
	Src, Dst string // endpoint names
	Proto    policy.Protocol
	Port     int
	// DemandMbps is the offered load.
	DemandMbps float64
}

// Allocation is the simulator's result for one flow.
type Allocation struct {
	Flow Flow
	// Path is the node walk the rules produced; nil when the flow
	// blackholed (no policy admits it).
	Path []topo.NodeID
	// ReservedMbps is the queue reservation along the path (0 for
	// best-effort flows).
	ReservedMbps float64
	// RateMbps is the achieved rate: guaranteed share plus max-min share
	// of leftover capacity.
	RateMbps float64
	// Delivered is false when the flow blackholed.
	Delivered bool
}

// LinkLoad reports post-simulation utilization of one directed link.
type LinkLoad struct {
	From, To topo.NodeID
	Capacity float64
	Carried  float64
}

// Result is a full simulation outcome.
type Result struct {
	Allocations []Allocation
	Links       []LinkLoad
}

// GuaranteeViolations returns the flows that received less than
// min(demand, reservation) — which must be empty for a correct
// configuration.
func (r *Result) GuaranteeViolations() []Allocation {
	var out []Allocation
	for _, a := range r.Allocations {
		if !a.Delivered || a.ReservedMbps <= 0 {
			continue
		}
		want := math.Min(a.Flow.DemandMbps, a.ReservedMbps)
		if a.RateMbps < want-1e-6 {
			out = append(out, a)
		}
	}
	return out
}

// Simulate routes the flows through the network's installed rules and
// computes rates.
func Simulate(t *topo.Topology, n *dataplane.Network, flows []Flow) (*Result, error) {
	type routed struct {
		flow     Flow
		links    [][2]topo.NodeID
		path     []topo.NodeID
		reserved float64
	}
	var admitted []routed
	res := &Result{}

	for _, f := range flows {
		if f.DemandMbps <= 0 {
			return nil, fmt.Errorf("traffic: flow %s->%s has non-positive demand", f.Src, f.Dst)
		}
		walk, err := n.Lookup(f.Src, f.Dst, f.Proto, f.Port)
		if err != nil {
			res.Allocations = append(res.Allocations, Allocation{Flow: f})
			continue
		}
		links := make([][2]topo.NodeID, 0, len(walk)-1)
		for i := 0; i+1 < len(walk); i++ {
			links = append(links, [2]topo.NodeID{walk[i], walk[i+1]})
		}
		admitted = append(admitted, routed{
			flow:     f,
			links:    links,
			path:     walk,
			reserved: reservationOf(n, walk, f),
		})
	}

	// Residual capacity per directed link after granting reservations.
	residual := map[[2]topo.NodeID]float64{}
	capOf := func(l [2]topo.NodeID) float64 {
		if c, ok := residual[l]; ok {
			return c
		}
		c, ok := t.LinkCapacity(l[0], l[1])
		if !ok {
			c = math.Inf(1) // virtual hop (e.g. within a node); not limiting
		}
		residual[l] = c
		return c
	}
	rates := make([]float64, len(admitted))
	extraDemand := make([]float64, len(admitted))
	for i, r := range admitted {
		guaranteed := math.Min(r.flow.DemandMbps, r.reserved)
		rates[i] = guaranteed
		extraDemand[i] = r.flow.DemandMbps - guaranteed
		for _, l := range r.links {
			residual[l] = capOf(l) - guaranteed
			if residual[l] < 0 {
				// Over-reservation would be a configurator bug; clamp and
				// surface through link loads rather than failing.
				residual[l] = 0
			}
		}
	}

	// Progressive filling (max-min) of the leftover demand.
	active := map[int]bool{}
	for i := range admitted {
		if extraDemand[i] > 1e-9 {
			active[i] = true
		}
	}
	for len(active) > 0 {
		// Find the tightest link among active flows.
		type linkState struct {
			users int
			avail float64
		}
		states := map[[2]topo.NodeID]*linkState{}
		for i := range active {
			for _, l := range admitted[i].links {
				s, ok := states[l]
				if !ok {
					s = &linkState{avail: capOf(l)}
					states[l] = s
				}
				s.users++
			}
		}
		increment := math.Inf(1)
		for _, s := range states {
			if share := s.avail / float64(s.users); share < increment {
				increment = share
			}
		}
		// Demand satisfaction can bind before any link does.
		for i := range active {
			if extraDemand[i] < increment {
				increment = extraDemand[i]
			}
		}
		if math.IsInf(increment, 1) || increment <= 1e-12 {
			increment = 0
		}
		// Apply the increment and retire saturated flows/links.
		frozen := []int{}
		for i := range active {
			rates[i] += increment
			extraDemand[i] -= increment
			for _, l := range admitted[i].links {
				residual[l] -= increment
			}
			if extraDemand[i] <= 1e-9 {
				frozen = append(frozen, i)
			}
		}
		for i := range active {
			if containsFrozen(frozen, i) {
				continue
			}
			for _, l := range admitted[i].links {
				if residual[l] <= 1e-9 {
					frozen = append(frozen, i)
					break
				}
			}
		}
		if len(frozen) == 0 {
			break // numerical stalemate; stop rather than spin
		}
		for _, i := range frozen {
			delete(active, i)
		}
	}

	// Assemble results.
	carried := map[[2]topo.NodeID]float64{}
	for i, r := range admitted {
		res.Allocations = append(res.Allocations, Allocation{
			Flow:         r.flow,
			Path:         r.path,
			ReservedMbps: r.reserved,
			RateMbps:     rates[i],
			Delivered:    true,
		})
		for _, l := range r.links {
			carried[l] += rates[i]
		}
	}
	var linkKeys [][2]topo.NodeID
	for l := range carried {
		linkKeys = append(linkKeys, l)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	for _, l := range linkKeys {
		c, ok := t.LinkCapacity(l[0], l[1])
		if !ok {
			continue
		}
		res.Links = append(res.Links, LinkLoad{From: l[0], To: l[1], Capacity: c, Carried: carried[l]})
	}
	return res, nil
}

// reservationOf finds the queue rate limit the flow's ingress rule grants.
func reservationOf(n *dataplane.Network, walk []topo.NodeID, f Flow) float64 {
	if len(walk) == 0 {
		return 0
	}
	for _, r := range n.RulesAt(walk[0]) {
		if r.Src == f.Src && r.Dst == f.Dst && r.InPort == dataplane.HostPort &&
			r.Match.Matches(f.Proto, f.Port) {
			return r.QueueMbps
		}
	}
	return 0
}

func containsFrozen(frozen []int, i int) bool {
	for _, f := range frozen {
		if f == i {
			return true
		}
	}
	return false
}
