// Package intent implements a small text language for Janus policy graphs,
// standing in for the extended-Pyretic intent layer of the paper's
// prototype (§6). Policy writers express graphs as plain text:
//
//	# QoS policy of Fig 1(a)
//	graph web-qos weight 4
//
//	epg Marketing labels Nml,Mktg
//	epg Web labels Nml,Web
//
//	Marketing -> Web: match tcp/80,443; chain LB; minbw 100Mbps
//	Marketing -> Web: chain L-IDS,H-IDS; when failed-connections >= 5
//	Marketing -> Web: minbw high; when time 9-18
//
// One file is one policy graph: a `graph` header, optional `epg`
// declarations (EPGs referenced only in edges default to a label equal to
// their name), and one edge per line. Edge clauses are semicolon-separated:
//
//	match PROTO[/PORT[,PORT…]]      traffic classifier
//	chain NF[,NF…]                  waypoint service chain
//	minbw LABEL | <n>Mbps           minimum bandwidth (label or explicit)
//	maxbw LABEL                     maximum bandwidth label
//	latency LABEL                   latency label (hop budget)
//	jitter LABEL                    jitter label (priority queue)
//	when time H-H                   temporal window (hours of day)
//	when EVENT >= N | when EVENT < N  stateful condition
//	default                         marks the stateful default edge
//
// Parse errors carry line numbers. Format renders a graph back to the
// language; Parse∘Format is the identity on the graph structure.
package intent

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"janus/internal/labels"
	"janus/internal/policy"
)

// ParseError is a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("intent: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads one policy graph from the intent language.
func Parse(src string) (*policy.Graph, error) {
	var g *policy.Graph
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := strings.TrimSpace(raw)
		if idx := strings.IndexByte(text, '#'); idx >= 0 {
			text = strings.TrimSpace(text[:idx])
		}
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "graph "):
			if g != nil {
				return nil, errf(line, "duplicate graph header")
			}
			var err error
			g, err = parseHeader(line, text)
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(text, "epg "):
			if g == nil {
				return nil, errf(line, "epg before graph header")
			}
			e, err := parseEPG(line, text)
			if err != nil {
				return nil, err
			}
			g.AddEPG(e)
		default:
			if g == nil {
				return nil, errf(line, "edge before graph header")
			}
			e, err := parseEdge(line, text)
			if err != nil {
				return nil, err
			}
			g.AddEdge(e)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("intent: no graph header found")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("intent: %w", err)
	}
	return g, nil
}

func parseHeader(line int, text string) (*policy.Graph, error) {
	fields := strings.Fields(text)
	// graph NAME [weight W]
	if len(fields) < 2 {
		return nil, errf(line, "graph header needs a name")
	}
	if !validName(fields[1]) {
		return nil, errf(line, "invalid graph name %q", fields[1])
	}
	g := policy.NewGraph(fields[1])
	rest := fields[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "weight":
			if len(rest) < 2 {
				return nil, errf(line, "weight needs a value")
			}
			w, err := strconv.ParseFloat(rest[1], 64)
			if err != nil || w <= 0 {
				return nil, errf(line, "bad weight %q", rest[1])
			}
			g.Weight = w
			rest = rest[2:]
		default:
			return nil, errf(line, "unknown graph attribute %q", rest[0])
		}
	}
	return g, nil
}

func parseEPG(line int, text string) (policy.EPG, error) {
	fields := strings.Fields(text)
	// epg NAME [labels a,b,c]
	if len(fields) < 2 {
		return policy.EPG{}, errf(line, "epg needs a name")
	}
	name := fields[1]
	if !validName(name) {
		return policy.EPG{}, errf(line, "invalid epg name %q", name)
	}
	labels := []string{name}
	rest := fields[2:]
	for len(rest) > 0 {
		switch rest[0] {
		case "labels":
			if len(rest) < 2 {
				return policy.EPG{}, errf(line, "labels needs a value")
			}
			labels = strings.Split(rest[1], ",")
			rest = rest[2:]
		default:
			return policy.EPG{}, errf(line, "unknown epg attribute %q", rest[0])
		}
	}
	return policy.NewEPG(name, labels...), nil
}

func parseEdge(line int, text string) (policy.Edge, error) {
	head, clauses, found := strings.Cut(text, ":")
	if !found {
		clauses = ""
		head = text
	}
	src, dst, ok := splitArrow(head)
	if !ok {
		return policy.Edge{}, errf(line, "edge must be SRC -> DST[: clauses], got %q", text)
	}
	e := policy.Edge{Src: src, Dst: dst}
	for _, clause := range strings.Split(clauses, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := applyClause(line, &e, clause); err != nil {
			return policy.Edge{}, err
		}
	}
	return e, nil
}

func splitArrow(head string) (src, dst string, ok bool) {
	parts := strings.Split(head, "->")
	if len(parts) != 2 {
		return "", "", false
	}
	src = strings.TrimSpace(parts[0])
	dst = strings.TrimSpace(parts[1])
	return src, dst, validName(src) && validName(dst)
}

// validName restricts EPG/graph names to single tokens free of the
// language's separators, so every parsed name survives a Format/Parse
// round trip.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if unicode.IsSpace(r) || !unicode.IsGraphic(r) || strings.ContainsRune(",;:#", r) {
			return false
		}
	}
	return true
}

func applyClause(line int, e *policy.Edge, clause string) error {
	word, rest, _ := strings.Cut(clause, " ")
	rest = strings.TrimSpace(rest)
	switch word {
	case "match":
		m, err := parseClassifier(line, rest)
		if err != nil {
			return err
		}
		e.Match = m
	case "chain":
		if rest == "" {
			return errf(line, "chain needs NF kinds")
		}
		for _, nf := range strings.Split(rest, ",") {
			nf = strings.TrimSpace(nf)
			if nf == "" {
				return errf(line, "empty NF in chain")
			}
			e.Chain = append(e.Chain, policy.NFKind(nf))
		}
	case "minbw":
		if strings.HasSuffix(rest, "Mbps") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(rest, "Mbps"), 64)
			if err != nil || v <= 0 {
				return errf(line, "bad bandwidth %q", rest)
			}
			e.QoS.BandwidthMbps = v
		} else if rest == "" {
			return errf(line, "minbw needs a label or <n>Mbps")
		} else {
			e.QoS.MinBandwidth = labelOf(rest)
		}
	case "maxbw":
		if rest == "" {
			return errf(line, "maxbw needs a label")
		}
		e.QoS.MaxBandwidth = labelOf(rest)
	case "latency":
		if rest == "" {
			return errf(line, "latency needs a label")
		}
		e.QoS.Latency = labelOf(rest)
	case "jitter":
		if rest == "" {
			return errf(line, "jitter needs a label")
		}
		e.QoS.Jitter = labelOf(rest)
	case "when":
		return parseWhen(line, e, rest)
	case "default":
		if rest != "" {
			return errf(line, "default takes no argument")
		}
		e.Default = true
	default:
		return errf(line, "unknown clause %q", word)
	}
	return nil
}

func labelOf(s string) labels.Label {
	return labels.Label(strings.TrimSpace(s))
}

func parseClassifier(line int, rest string) (policy.Classifier, error) {
	if rest == "" {
		return policy.Classifier{}, errf(line, "match needs PROTO[/PORTS]")
	}
	proto, ports, hasPorts := strings.Cut(rest, "/")
	c := policy.Classifier{Proto: policy.Protocol(strings.TrimSpace(proto))}
	switch c.Proto {
	case policy.TCP, policy.UDP, policy.Any:
	default:
		return policy.Classifier{}, errf(line, "unknown protocol %q", proto)
	}
	if hasPorts {
		for _, p := range strings.Split(ports, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 || v > 65535 {
				return policy.Classifier{}, errf(line, "bad port %q", p)
			}
			c.Ports = append(c.Ports, v)
		}
	}
	return c, nil
}

func parseWhen(line int, e *policy.Edge, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return errf(line, "when needs a condition")
	}
	if fields[0] == "time" {
		if len(fields) != 2 {
			return errf(line, "when time needs H-H")
		}
		lo, hi, ok := strings.Cut(fields[1], "-")
		if !ok {
			return errf(line, "when time needs H-H, got %q", fields[1])
		}
		start, err1 := strconv.Atoi(lo)
		end, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil {
			return errf(line, "bad time window %q", fields[1])
		}
		w := policy.TimeWindow{Start: start, End: end}
		if err := w.Validate(); err != nil {
			return errf(line, "%v", err)
		}
		e.Cond.Window = w
		return nil
	}
	// Stateful: EVENT >= N or EVENT < N.
	if len(fields) != 3 {
		return errf(line, "when needs EVENT >= N or EVENT < N, got %q", rest)
	}
	ev := policy.Event(fields[0])
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return errf(line, "bad threshold %q", fields[2])
	}
	var cond policy.StatefulCond
	switch fields[1] {
	case ">=":
		cond = policy.WhenAtLeast(ev, n)
	case "<":
		cond = policy.WhenBelow(ev, n)
	case ">":
		cond = policy.WhenAtLeast(ev, n+1)
	default:
		return errf(line, "unknown comparison %q (use >=, >, <)", fields[1])
	}
	merged, ok := e.Cond.Stateful.And(cond)
	if !ok {
		return errf(line, "unsatisfiable stateful condition")
	}
	e.Cond.Stateful = merged
	return nil
}

// Format renders a policy graph in the intent language. Parsing the output
// reproduces the graph.
func Format(g *policy.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s", g.Name)
	if g.Weight > 0 {
		fmt.Fprintf(&b, " weight %g", g.Weight)
	}
	b.WriteString("\n\n")
	for _, e := range g.EPGs {
		fmt.Fprintf(&b, "epg %s labels %s\n", e.Name, strings.Join(e.Labels, ","))
	}
	if len(g.EPGs) > 0 {
		b.WriteByte('\n')
	}
	for _, e := range g.Edges {
		b.WriteString(formatEdge(e))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatEdge(e policy.Edge) string {
	var clauses []string
	if !e.Match.MatchAll() {
		clauses = append(clauses, "match "+formatClassifier(e.Match))
	}
	if len(e.Chain) > 0 {
		parts := make([]string, len(e.Chain))
		for i, nf := range e.Chain {
			parts[i] = string(nf)
		}
		clauses = append(clauses, "chain "+strings.Join(parts, ","))
	}
	if e.QoS.BandwidthMbps > 0 {
		clauses = append(clauses, fmt.Sprintf("minbw %gMbps", e.QoS.BandwidthMbps))
	} else if e.QoS.MinBandwidth != "" {
		clauses = append(clauses, "minbw "+string(e.QoS.MinBandwidth))
	}
	if e.QoS.MaxBandwidth != "" {
		clauses = append(clauses, "maxbw "+string(e.QoS.MaxBandwidth))
	}
	if e.QoS.Latency != "" {
		clauses = append(clauses, "latency "+string(e.QoS.Latency))
	}
	if e.QoS.Jitter != "" {
		clauses = append(clauses, "jitter "+string(e.QoS.Jitter))
	}
	if !e.Cond.Window.IsAllDay() {
		clauses = append(clauses, fmt.Sprintf("when time %d-%d", e.Cond.Window.Start, e.Cond.Window.End))
	}
	for _, sr := range sortedRanges(e.Cond.Stateful) {
		switch {
		case sr.r.Hi == policy.Unbounded && sr.r.Lo > 0:
			clauses = append(clauses, fmt.Sprintf("when %s >= %d", sr.ev, sr.r.Lo))
		case sr.r.Lo == 0 && sr.r.Hi != policy.Unbounded:
			clauses = append(clauses, fmt.Sprintf("when %s < %d", sr.ev, sr.r.Hi))
		case sr.r.Lo > 0 && sr.r.Hi != policy.Unbounded:
			// A bounded range renders as the conjunction of two clauses.
			clauses = append(clauses,
				fmt.Sprintf("when %s >= %d", sr.ev, sr.r.Lo),
				fmt.Sprintf("when %s < %d", sr.ev, sr.r.Hi))
		}
	}
	if e.Default {
		clauses = append(clauses, "default")
	}
	line := fmt.Sprintf("%s -> %s", e.Src, e.Dst)
	if len(clauses) > 0 {
		line += ": " + strings.Join(clauses, "; ")
	}
	return line
}

type evRange struct {
	ev policy.Event
	r  policy.CountRange
}

func sortedRanges(c policy.StatefulCond) []evRange {
	out := make([]evRange, 0, len(c.Ranges))
	for ev, r := range c.Ranges {
		out = append(out, evRange{ev, r})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ev < out[j-1].ev; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func formatClassifier(c policy.Classifier) string {
	proto := string(c.Proto)
	if proto == "" {
		proto = "any"
	}
	if len(c.Ports) == 0 {
		return proto
	}
	parts := make([]string, len(c.Ports))
	for i, p := range c.Ports {
		parts[i] = strconv.Itoa(p)
	}
	return proto + "/" + strings.Join(parts, ",")
}
