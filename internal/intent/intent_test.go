package intent

import (
	"errors"
	"strings"
	"testing"

	"janus/internal/compose"
	"janus/internal/policy"
)

const sample = `
# QoS + stateful + temporal policy for the Marketing group
graph web-qos weight 4

epg Marketing labels Nml,Mktg
epg Web labels Nml,Web

Marketing -> Web: match tcp/80,443; chain LB; minbw 100Mbps; default
Marketing -> Web: chain L-IDS,H-IDS; when failed-connections >= 5
Marketing -> Web: minbw high; maxbw high; when time 9-18
`

func TestParseSample(t *testing.T) {
	g, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "web-qos" || g.Weight != 4 {
		t.Errorf("header = %q weight %g", g.Name, g.Weight)
	}
	if len(g.EPGs) != 2 {
		t.Fatalf("EPGs = %v", g.EPGs)
	}
	mktg, ok := g.EPGByName("Marketing")
	if !ok || mktg.Key() != "Mktg&Nml" {
		t.Errorf("Marketing EPG = %v", mktg)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(g.Edges))
	}
	e0 := g.Edges[0]
	if !e0.Default {
		t.Error("first edge should be default")
	}
	if e0.Match.Proto != policy.TCP || len(e0.Match.Ports) != 2 {
		t.Errorf("match = %v", e0.Match)
	}
	if !e0.Chain.Equal(policy.Chain{policy.LoadBalance}) {
		t.Errorf("chain = %v", e0.Chain)
	}
	if e0.QoS.BandwidthMbps != 100 {
		t.Errorf("bw = %v", e0.QoS.BandwidthMbps)
	}
	e1 := g.Edges[1]
	if r := e1.Cond.Stateful.Ranges[policy.FailedConnections]; r.Lo != 5 {
		t.Errorf("stateful = %v", e1.Cond.Stateful)
	}
	if !e1.Chain.Equal(policy.Chain{policy.LightIDS, policy.HeavyIDS}) {
		t.Errorf("chain = %v", e1.Chain)
	}
	e2 := g.Edges[2]
	if e2.Cond.Window != (policy.TimeWindow{Start: 9, End: 18}) {
		t.Errorf("window = %v", e2.Cond.Window)
	}
	if e2.QoS.MinBandwidth != "high" || e2.QoS.MaxBandwidth != "high" {
		t.Errorf("labels = %v", e2.QoS)
	}
}

func TestParsedGraphComposes(t *testing.T) {
	g, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := compose.New(nil).Compose(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cg.Policies) != 1 {
		t.Errorf("composed %d policies, want 1", len(cg.Policies))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	g, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(g)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing formatted output: %v\n%s", err, text)
	}
	if back.Name != g.Name || back.Weight != g.Weight {
		t.Errorf("header drift: %q/%g vs %q/%g", back.Name, back.Weight, g.Name, g.Weight)
	}
	if len(back.EPGs) != len(g.EPGs) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("structure drift: %d/%d EPGs, %d/%d edges",
			len(back.EPGs), len(g.EPGs), len(back.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i].String() != back.Edges[i].String() {
			t.Errorf("edge %d drift:\n  %s\n  %s", i, g.Edges[i], back.Edges[i])
		}
		if g.Edges[i].Default != back.Edges[i].Default {
			t.Errorf("edge %d default flag drift", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
		line      int
	}{
		{"no header", "A -> B", 1},
		{"dup header", "graph a\ngraph b", 2},
		{"epg before header", "epg X", 1},
		{"bad weight", "graph a weight nope", 1},
		{"unknown graph attr", "graph a color red", 1},
		{"epg no name", "graph a\nepg", 2},
		{"unknown epg attr", "graph a\nepg X size 3", 2},
		{"bad edge", "graph a\nA B", 2},
		{"empty src", "graph a\n -> B", 2},
		{"unknown clause", "graph a\nA -> B: teleport", 2},
		{"bad proto", "graph a\nA -> B: match icmp", 2},
		{"bad port", "graph a\nA -> B: match tcp/99999", 2},
		{"empty chain", "graph a\nA -> B: chain", 2},
		{"bad minbw", "graph a\nA -> B: minbw xMbps", 2},
		{"empty maxbw", "graph a\nA -> B: maxbw", 2},
		{"bad window", "graph a\nA -> B: when time 30-2", 2},
		{"bad when", "graph a\nA -> B: when foo", 2},
		{"bad comparison", "graph a\nA -> B: when failed-connections = 5", 2},
		{"bad threshold", "graph a\nA -> B: when failed-connections >= x", 2},
		{"default with arg", "graph a\nA -> B: default yes", 2},
		{"unsat stateful", "graph a\nA -> B: when e >= 9; when e < 4", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", tc.src)
			}
			var pe *ParseError
			if errors.As(err, &pe) {
				if pe.Line != tc.line {
					t.Errorf("error line = %d, want %d (%v)", pe.Line, tc.line, err)
				}
			}
		})
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty source should fail (no header)")
	}
	// Validation failures surface too (self loop).
	if _, err := Parse("graph a\nA -> A"); err == nil {
		t.Error("self loop should fail validation")
	}
}

func TestParseGreaterThan(t *testing.T) {
	// "> 4" is the paper's phrasing (Fig 9b); it parses as >= 5.
	g, err := Parse("graph a\nA -> B: when failed-connections > 4")
	if err != nil {
		t.Fatal(err)
	}
	if r := g.Edges[0].Cond.Stateful.Ranges[policy.FailedConnections]; r.Lo != 5 {
		t.Errorf("> 4 parsed as %v, want Lo=5", r)
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := "  graph a   # trailing comment\n\n   \n# full line comment\nA -> B: minbw low # another\n"
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 || g.Edges[0].QoS.MinBandwidth != "low" {
		t.Errorf("parsed %v", g.Edges)
	}
}

func TestFormatBoundedRange(t *testing.T) {
	// A bounded stateful range formats as two clauses and round-trips.
	g := policy.NewGraph("g")
	cond, ok := policy.WhenAtLeast("e", 5).And(policy.WhenBelow("e", 9))
	if !ok {
		t.Fatal("condition should be satisfiable")
	}
	g.AddEdge(policy.Edge{Src: "A", Dst: "B", Cond: policy.Condition{Stateful: cond}})
	text := Format(g)
	if !strings.Contains(text, ">= 5") || !strings.Contains(text, "< 9") {
		t.Errorf("bounded range formatting: %q", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if r := back.Edges[0].Cond.Stateful.Ranges["e"]; r.Lo != 5 || r.Hi != 9 {
		t.Errorf("round trip range = %v", r)
	}
}

func TestEdgeWithoutClauses(t *testing.T) {
	g, err := Parse("graph a\nA -> B")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 || !g.Edges[0].Cond.IsStatic() {
		t.Errorf("bare edge = %v", g.Edges)
	}
}
