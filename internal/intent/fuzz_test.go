package intent

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that every
// successfully parsed graph re-formats and re-parses to the same
// structure (Format∘Parse is idempotent on valid inputs). Run with
// `go test -fuzz=FuzzParse ./internal/intent` for extended fuzzing; the
// seed corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"graph g\nA -> B",
		"graph g weight 4\nepg A labels X,Y\nA -> B: minbw high",
		"graph g\nA -> B: match tcp/80,443; chain FW,LB; minbw 100Mbps; default",
		"graph g\nA -> B: when time 9-18; jitter low",
		"graph g\nA -> B: when failed-connections >= 5; latency strict",
		"graph g\nA -> B: when e > 4; when e < 9",
		"# comment only\ngraph g\n\nA -> B: maxbw medium",
		"graph",
		"graph g\nA ->",
		"graph g\nA -> B: match",
		"graph g\nA -> B: when time 99-3",
		strings.Repeat("graph g\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return // rejected inputs just must not panic
		}
		text := Format(g)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\ninput: %q\nformatted: %q", err, src, text)
		}
		if len(back.Edges) != len(g.Edges) || len(back.EPGs) != len(g.EPGs) {
			t.Fatalf("round trip changed structure: %d/%d edges, %d/%d EPGs",
				len(back.Edges), len(g.Edges), len(back.EPGs), len(g.EPGs))
		}
		for i := range g.Edges {
			if g.Edges[i].String() != back.Edges[i].String() {
				t.Fatalf("edge %d drift: %q vs %q", i, g.Edges[i], back.Edges[i])
			}
		}
	})
}
