package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the handful of filesystem operations the store performs, so
// the crash-injection harness (CrashFS) can substitute a simulated disk
// with precise sync/crash semantics. Production uses OSFS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Create truncates or creates the file for writing.
	Create(name string) (File, error)
	// OpenAppend opens (creating if needed) the file for appending.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newName with oldName.
	Rename(oldName, newName string) error
	// Remove deletes the file.
	Remove(name string) error
	// Truncate cuts the file to size bytes (the torn-tail repair on
	// recovery).
	Truncate(name string, size int64) error
}

// File is a writable handle with durability control.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation backed by the os
// package.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Rename renames and then fsyncs the parent directory, so the new directory
// entry is durable before the caller proceeds (the write-temp + rename
// snapshot protocol depends on it).
func (osFS) Rename(oldName, newName string) error {
	if err := os.Rename(oldName, newName); err != nil {
		return err
	}
	return syncDir(filepath.Dir(newName))
}

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// syncDir fsyncs a directory so metadata operations (rename, create) inside
// it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
