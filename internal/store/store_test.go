package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"janus/internal/policy"
	"janus/internal/topo"
)

func testTopo() *topo.Topology {
	t := topo.NewTopology("t")
	a := t.AddSwitch("a")
	b := t.AddSwitch("b")
	if err := t.AddLink(a, b, 100); err != nil {
		panic(err)
	}
	return t
}

func mustAppend(t *testing.T, s *Store, rec *Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func tickRecord(hour int) *Record {
	return &Record{Kind: KindTick, Hour: hour}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-delta")}
	var buf []byte
	for _, p := range payloads {
		buf = append(buf, encodeFrame(p)...)
	}
	got, validLen, torn := decodeFrames(buf)
	if torn {
		t.Fatal("clean frames reported torn")
	}
	if validLen != int64(len(buf)) {
		t.Fatalf("validLen = %d, want %d", validLen, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if string(got[i]) != string(payloads[i]) {
			t.Errorf("payload %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestFrameTornTail(t *testing.T) {
	whole := encodeFrame([]byte("first record"))
	second := encodeFrame([]byte("second record"))
	cases := []struct {
		name string
		data []byte
	}{
		{"cut header", append(append([]byte{}, whole...), second[:4]...)},
		{"cut payload", append(append([]byte{}, whole...), second[:frameHeaderSize+3]...)},
		{"flipped bit", func() []byte {
			buf := append(append([]byte{}, whole...), second...)
			buf[len(whole)+frameHeaderSize] ^= 0x40
			return buf
		}()},
		{"insane length", func() []byte {
			buf := append(append([]byte{}, whole...), second...)
			buf[len(whole)] = 0xff
			buf[len(whole)+1] = 0xff
			buf[len(whole)+2] = 0xff
			buf[len(whole)+3] = 0xff
			return buf
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payloads, validLen, torn := decodeFrames(tc.data)
			if !torn {
				t.Fatal("torn tail not detected")
			}
			if validLen != int64(len(whole)) {
				t.Fatalf("validLen = %d, want %d", validLen, len(whole))
			}
			if len(payloads) != 1 || string(payloads[0]) != "first record" {
				t.Fatalf("payloads = %q, want just the first record", payloads)
			}
		})
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := NewCrashFS(1)
	s, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.RecoveredState() != nil {
		t.Fatal("cold start returned a recovered state")
	}
	mustAppend(t, s, &Record{Kind: KindConfigure, Hour: 0, Topo: testTopo()})
	mustAppend(t, s, &Record{
		Kind:    KindReconfigure,
		Hour:    1,
		TopoOps: []TopoOp{{Op: TopoAddEndpoint, Endpoint: "web1", Node: 1, Labels: []string{"Web"}}},
		Counter: &CounterDelta{Src: "a", Dst: "b", Event: "FailedConnections", Delta: 2},
	})
	mustAppend(t, s, tickRecord(5))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.RecoveryInfo()
	if info.ReplayedRecords != 3 || info.LastSeq != 3 || info.TornTail {
		t.Fatalf("recovery info = %+v, want 3 replayed, lastSeq 3, no torn tail", info)
	}
	state := s2.RecoveredState()
	if state == nil {
		t.Fatal("no recovered state")
	}
	if state.Hour != 5 {
		t.Errorf("hour = %d, want 5", state.Hour)
	}
	if got := state.Counters["a->b"]["FailedConnections"]; got != 2 {
		t.Errorf("counter = %d, want 2", got)
	}
	if _, ok := state.Topo.EndpointByName("web1"); !ok {
		t.Error("replayed endpoint missing")
	}
	// Appends continue from the recovered sequence.
	rec := tickRecord(6)
	mustAppend(t, s2, rec)
	if rec.Seq != 4 {
		t.Errorf("post-recovery seq = %d, want 4", rec.Seq)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	fs := NewCrashFS(7)
	s, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, &Record{Kind: KindConfigure, Topo: testTopo()})
	mustAppend(t, s, tickRecord(1))

	// Crash during the third append's write: the journal gains a torn
	// record that recovery must truncate.
	fs.SetCrashAfter(1)
	if err := s.Append(tickRecord(2)); err == nil {
		t.Fatal("append through crash succeeded")
	}
	fs.Restart()

	s2, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.RecoveryInfo()
	if info.ReplayedRecords != 2 || info.LastSeq != 2 {
		t.Fatalf("recovery info = %+v, want 2 replayed records", info)
	}
	if state := s2.RecoveredState(); state == nil || state.Hour != 1 {
		t.Fatalf("recovered state = %+v, want hour 1", s2.RecoveredState())
	}
	// The torn bytes are physically gone: the next append must land on a
	// clean boundary and survive another recovery.
	mustAppend(t, s2, tickRecord(3))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if info := s3.RecoveryInfo(); info.LastSeq != 3 || info.TornTail {
		t.Fatalf("third recovery info = %+v, want lastSeq 3 and clean tail", info)
	}
}

func TestWedgedAfterSyncFailure(t *testing.T) {
	fs := NewCrashFS(3)
	s, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, tickRecord(1))
	fs.SetCrashAfter(2) // the next append's fsync
	if err := s.Append(tickRecord(2)); err == nil {
		t.Fatal("append through fsync crash succeeded")
	}
	fs.Restart()
	// The store must refuse further appends: its in-memory tail position
	// no longer matches the disk.
	if err := s.Append(tickRecord(3)); err == nil {
		t.Fatal("append on wedged store succeeded")
	}
}

func TestWarmRestartZeroReplay(t *testing.T) {
	fs := NewCrashFS(11)
	s, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	state := &State{Hour: 9, Topo: testTopo(), Quarantined: []topo.NodeID{2}}
	s.SetSnapshotSource(func() *State { return state })
	mustAppend(t, s, &Record{Kind: KindConfigure, Topo: testTopo()})
	mustAppend(t, s, tickRecord(9))
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.RecoveryInfo()
	if !info.SnapshotLoaded || info.ReplayedRecords != 0 || info.Generation != 1 || info.LastSeq != 2 {
		t.Fatalf("warm restart info = %+v, want snapshot gen 1, zero replayed, lastSeq 2", info)
	}
	got := s2.RecoveredState()
	if got.Hour != 9 || len(got.Quarantined) != 1 || got.Quarantined[0] != 2 {
		t.Fatalf("recovered state = %+v, want snapshot contents", got)
	}
}

func TestSnapshotCorruptionFallsBack(t *testing.T) {
	fs := NewCrashFS(13)
	s, err := Open(fs, "data", Options{SnapshotEvery: 2, KeepGenerations: 10})
	if err != nil {
		t.Fatal(err)
	}
	hour := 0
	s.SetSnapshotSource(func() *State { return &State{Hour: hour} })
	for hour = 1; hour <= 4; hour++ {
		mustAppend(t, s, tickRecord(hour))
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2 after 4 appends at cadence 2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot on disk; recovery must fall back to
	// generation 1 and replay the journal suffix to reach the same state.
	path := filepath.Join("data", snapshotName(2))
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if _, err := fs.Create(path); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.RecoveryInfo()
	if info.SnapshotFallbacks != 1 || !info.SnapshotLoaded {
		t.Fatalf("recovery info = %+v, want one snapshot fallback", info)
	}
	if got := s2.RecoveredState(); got.Hour != 4 {
		t.Fatalf("recovered hour = %d, want 4", got.Hour)
	}
	if info.LastSeq != 4 {
		t.Fatalf("lastSeq = %d, want 4", info.LastSeq)
	}
}

// rewriteFile replaces a file's contents durably (test corruption helper).
func rewriteFile(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSequenceGapTruncatesStaleSuffix reconstructs the abandoned-timeline
// scenario: a snapshot-corruption fallback replays an older journal whose
// tail was lost to an earlier torn-write truncation, so the next
// generation's journal holds records that no longer chain. Recovery must
// truncate those stale frames — otherwise records acked after this recovery
// would sit behind frames every future recovery stops at, and be lost.
func TestSequenceGapTruncatesStaleSuffix(t *testing.T) {
	fs := NewCrashFS(19)
	s, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	hour := 0
	s.SetSnapshotSource(func() *State { return &State{Hour: hour} })
	for hour = 1; hour <= 3; hour++ {
		mustAppend(t, s, tickRecord(hour))
	}
	if err := s.SnapshotNow(); err != nil { // generation 1; journal rotates
		t.Fatal(err)
	}
	for hour = 4; hour <= 5; hour++ {
		mustAppend(t, s, tickRecord(hour))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt snapshot 1 so recovery falls back to a cold replay of
	// generation 0's journal, and cut that journal's last record as an
	// earlier torn-tail truncation would have: generation 1's records
	// (seqs 4-5) now chain from a state that no longer exists.
	snapPath := filepath.Join("data", snapshotName(1))
	data, err := fs.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	rewriteFile(t, fs, snapPath, data)
	walPath := filepath.Join("data", walName(0))
	if data, err = fs.ReadFile(walPath); err != nil {
		t.Fatal(err)
	}
	payloads, _, torn := decodeFrames(data)
	if torn || len(payloads) != 3 {
		t.Fatalf("wal 0 has %d records (torn=%v), want 3", len(payloads), torn)
	}
	cut := int64(len(data) - frameHeaderSize - len(payloads[len(payloads)-1]))
	if err := fs.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	info := s2.RecoveryInfo()
	if info.SnapshotLoaded || info.ReplayedRecords != 2 || info.LastSeq != 2 || !info.TornTail {
		t.Fatalf("gap recovery info = %+v, want 2 replayed records and a truncated tail", info)
	}
	// Records acked from here on must survive the next recovery: the stale
	// frames are gone, so the chain runs straight into the new records.
	mustAppend(t, s2, tickRecord(3))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(fs, "data", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if info := s3.RecoveryInfo(); info.LastSeq != 3 || info.TornTail {
		t.Fatalf("post-gap recovery info = %+v, want lastSeq 3 and a clean tail", info)
	}
	if got := s3.RecoveredState(); got == nil || got.Hour != 3 {
		t.Fatalf("recovered state = %+v, want hour 3", s3.RecoveredState())
	}
}

func TestGenerationGC(t *testing.T) {
	fs := NewCrashFS(17)
	s, err := Open(fs, "data", Options{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hour := 0
	s.SetSnapshotSource(func() *State { return &State{Hour: hour} })
	for hour = 1; hour <= 5; hour++ {
		mustAppend(t, s, tickRecord(hour))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		snapshotName(4), snapshotName(5),
		walName(4), walName(5),
	}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %s after GC (have %v)", w, names)
		}
	}
	if len(names) != len(want) {
		t.Errorf("GC left %v, want exactly %v", names, want)
	}
}

func TestCrashDuringSnapshotRename(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fs := NewCrashFS(seed)
			s, err := Open(fs, "data", Options{})
			if err != nil {
				t.Fatal(err)
			}
			hour := 0
			s.SetSnapshotSource(func() *State { return &State{Hour: hour} })
			for hour = 1; hour <= 3; hour++ {
				mustAppend(t, s, tickRecord(hour))
			}
			// Snapshot write is: temp write, temp sync, rename. Crash on
			// the rename — the swap may or may not have happened.
			fs.SetCrashAfter(3)
			if err := s.SnapshotNow(); err == nil {
				t.Fatal("snapshot through crash succeeded")
			}
			fs.Restart()

			s2, err := Open(fs, "data", Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			// Either way the journal still covers everything: recovered
			// state must show hour 3 with lastSeq 3.
			if got := s2.RecoveredState(); got == nil || got.Hour != 3 {
				t.Fatalf("recovered state = %+v, want hour 3\nfs:\n%s", got, fs.Dump())
			}
			if info := s2.RecoveryInfo(); info.LastSeq != 3 {
				t.Fatalf("lastSeq = %d, want 3", info.LastSeq)
			}
		})
	}
}

func TestCrashSweepEveryPoint(t *testing.T) {
	// Drive an identical workload through every possible crash point and
	// assert recovery always lands on a journal boundary: hour H with
	// lastSeq H for some prefix H of the workload.
	const events = 6
	ref := NewCrashFS(0)
	s, err := Open(ref, "data", Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	refHour := 0
	s.SetSnapshotSource(func() *State { return &State{Hour: refHour} })
	for refHour = 1; refHour <= events; refHour++ {
		mustAppend(t, s, tickRecord(refHour))
	}
	totalOps := ref.Ops()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for point := 1; point <= totalOps; point++ {
		for seed := int64(0); seed < 3; seed++ {
			fs := NewCrashFS(seed)
			s, err := Open(fs, "data", Options{SnapshotEvery: 3})
			if err != nil {
				t.Fatalf("point %d seed %d: %v", point, seed, err)
			}
			hour := 0
			s.SetSnapshotSource(func() *State { return &State{Hour: hour} })
			fs.SetCrashAfter(point)
			acked := 0
			for hour = 1; hour <= events; hour++ {
				if err := s.Append(tickRecord(hour)); err != nil {
					break
				}
				acked = hour
			}
			fs.Restart()

			s2, err := Open(fs, "data", Options{})
			if err != nil {
				t.Fatalf("point %d seed %d: recovery: %v\nfs:\n%s", point, seed, err, fs.Dump())
			}
			info := s2.RecoveryInfo()
			state := s2.RecoveredState()
			gotHour := 0
			if state != nil {
				gotHour = state.Hour
			}
			if uint64(gotHour) != info.LastSeq {
				t.Fatalf("point %d seed %d: hour %d but lastSeq %d\nfs:\n%s",
					point, seed, gotHour, info.LastSeq, fs.Dump())
			}
			// No acked event may be lost; at most the in-flight record may
			// additionally have survived.
			if gotHour < acked || gotHour > acked+1 {
				t.Fatalf("point %d seed %d: recovered hour %d, acked %d\nfs:\n%s",
					point, seed, gotHour, acked, fs.Dump())
			}
			if err := s2.Close(); err != nil {
				t.Fatalf("point %d seed %d: close: %v", point, seed, err)
			}
		}
	}
}

func writerGraph(name string) *policy.Graph {
	return &policy.Graph{Name: name}
}

func TestReplayWriterRecords(t *testing.T) {
	state, err := Replay(nil, []*Record{
		{Seq: 1, Kind: KindWriterPut, Writer: "alice", WriterGraph: writerGraph("alice")},
		{Seq: 2, Kind: KindWriterPut, Writer: "bob", WriterGraph: writerGraph("bob")},
		{Seq: 3, Kind: KindWriterDelete, Writer: "alice"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Writers) != 1 {
		t.Fatalf("writers = %v, want just bob", state.Writers)
	}
	if state.Writers["bob"] == nil {
		t.Fatal("bob's graph missing")
	}
}
