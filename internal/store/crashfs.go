package store

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every CrashFS operation once the simulated
// crash has fired: the "process" is dead and nothing more reaches the disk
// until Restart.
var ErrCrashed = errors.New("crashfs: simulated crash")

// CrashFS is a deterministic in-memory filesystem modelling a disk with
// explicit durability: written bytes sit in a per-file unsynced buffer
// until Sync moves them to stable storage, and a seeded crash plan can kill
// the process at any counted operation (Write, Sync, Rename). The crash
// semantics mirror real failure modes:
//
//   - crash on a Write keeps a seeded prefix of the buffer — a torn write;
//   - crash on a Sync flushes a seeded prefix of the unsynced bytes — a
//     partial fsync;
//   - crash on a Rename lands on either side of the swap, seeded — a
//     failed (or lost) rename;
//   - Restart discards every file's unsynced bytes — the mid-update kill.
//
// After Restart the filesystem is usable again and holds exactly what a
// real disk would after a power cut at that operation.
type CrashFS struct {
	mu         sync.Mutex
	rng        *rand.Rand
	files      map[string]*memFile
	dirs       map[string]bool
	ops        int // counted durability operations so far
	crashAfter int // crash fires on the Nth counted op; 0 disables
	crashed    bool
}

type memFile struct {
	synced   []byte
	unsynced []byte
}

// NewCrashFS returns a crash-injectable in-memory filesystem whose torn
// prefixes and rename coin-flips are drawn from the given seed.
func NewCrashFS(seed int64) *CrashFS {
	return &CrashFS{
		rng:   rand.New(rand.NewSource(seed)),
		files: map[string]*memFile{},
		dirs:  map[string]bool{},
	}
}

// SetCrashAfter arms the crash to fire on the nth counted operation from
// now (n <= 0 disarms). Counted operations are Write, Sync, and Rename —
// the calls that change what survives a power cut.
func (c *CrashFS) SetCrashAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		c.crashAfter = 0
		return
	}
	c.crashAfter = c.ops + n
}

// Ops returns the number of counted durability operations performed.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the simulated crash has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Restart models the machine coming back up: unsynced bytes are gone,
// synced bytes survive, and the filesystem accepts operations again. The
// crash plan is disarmed; re-arm with SetCrashAfter for another round.
func (c *CrashFS) Restart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.files {
		f.unsynced = nil
	}
	c.crashed = false
	c.crashAfter = 0
}

// countOpLocked advances the op counter and reports whether this operation is the
// crash point. Callers must hold c.mu.
func (c *CrashFS) countOpLocked() bool {
	c.ops++
	return c.crashAfter > 0 && c.ops >= c.crashAfter
}

func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.dirs[filepath.Clean(dir)] = true
	return nil
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	var names []string
	for name := range c.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	f, ok := c.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("crashfs: %s: no such file", name)
	}
	out := make([]byte, 0, len(f.synced)+len(f.unsynced))
	out = append(out, f.synced...)
	out = append(out, f.unsynced...)
	return out, nil
}

func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	f := &memFile{}
	c.files[name] = f
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) OpenAppend(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	f, ok := c.files[name]
	if !ok {
		f = &memFile{}
		c.files[name] = f
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) Rename(oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	oldName, newName = filepath.Clean(oldName), filepath.Clean(newName)
	f, ok := c.files[oldName]
	if !ok {
		return fmt.Errorf("crashfs: rename %s: no such file", oldName)
	}
	if c.countOpLocked() {
		c.crashed = true
		// The power cut lands on either side of the atomic swap.
		if c.rng.Intn(2) == 0 {
			delete(c.files, oldName)
			c.files[newName] = f
		}
		return ErrCrashed
	}
	delete(c.files, oldName)
	c.files[newName] = f
	return nil
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if _, ok := c.files[name]; !ok {
		return fmt.Errorf("crashfs: remove %s: no such file", name)
	}
	delete(c.files, name)
	return nil
}

func (c *CrashFS) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	f, ok := c.files[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("crashfs: truncate %s: no such file", name)
	}
	total := int64(len(f.synced) + len(f.unsynced))
	if size >= total {
		return nil
	}
	if size <= int64(len(f.synced)) {
		f.synced = f.synced[:size]
		f.unsynced = nil
		return nil
	}
	f.unsynced = f.unsynced[:size-int64(len(f.synced))]
	return nil
}

// crashFile is an open handle onto a memFile.
type crashFile struct {
	fs *CrashFS
	f  *memFile
}

func (h *crashFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.fs.countOpLocked() {
		h.fs.crashed = true
		// Torn write: a seeded prefix of the buffer reaches the page cache
		// before the crash.
		keep := h.fs.rng.Intn(len(p) + 1)
		h.f.unsynced = append(h.f.unsynced, p[:keep]...)
		return keep, ErrCrashed
	}
	h.f.unsynced = append(h.f.unsynced, p...)
	return len(p), nil
}

func (h *crashFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	if h.fs.countOpLocked() {
		h.fs.crashed = true
		// Partial fsync: a seeded prefix of the dirty bytes made it to
		// stable storage before the crash.
		keep := h.fs.rng.Intn(len(h.f.unsynced) + 1)
		h.f.synced = append(h.f.synced, h.f.unsynced[:keep]...)
		h.f.unsynced = h.f.unsynced[keep:]
		return ErrCrashed
	}
	h.f.synced = append(h.f.synced, h.f.unsynced...)
	h.f.unsynced = nil
	return nil
}

func (h *crashFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// Dump lists the filesystem's contents for debugging soak failures.
func (c *CrashFS) Dump() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for name := range c.files {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := c.files[name]
		fmt.Fprintf(&b, "%s: %d synced + %d unsynced bytes\n", name, len(f.synced), len(f.unsynced))
	}
	return b.String()
}
