package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// snapshotMagic prefixes every snapshot file; the bytes after it are a
// single CRC32 frame holding the snapshot envelope.
var snapshotMagic = []byte("JANUS-SNAP-1\n")

// Options tunes the store's snapshot behaviour.
type Options struct {
	// SnapshotEvery takes an automatic snapshot after this many appends
	// (0 disables automatic snapshots; SnapshotNow still works).
	SnapshotEvery int
	// KeepGenerations retains this many snapshot generations (minimum 2:
	// the current one and a fallback).
	KeepGenerations int
}

func (o Options) keep() int {
	if o.KeepGenerations < 2 {
		return 2
	}
	return o.KeepGenerations
}

// Stats counts the store's durability work, surfaced on /metrics.
type Stats struct {
	Appends          uint64 `json:"appends"`
	Fsyncs           uint64 `json:"fsyncs"`
	Snapshots        uint64 `json:"snapshots"`
	SnapshotFailures uint64 `json:"snapshotFailures"`
	GCFailures       uint64 `json:"gcFailures"`
}

// RecoveryInfo describes what Open found on disk, surfaced on /status.
type RecoveryInfo struct {
	// Generation is the snapshot generation recovery started from.
	Generation uint64 `json:"generation"`
	// SnapshotLoaded is false on a cold start with no usable snapshot.
	SnapshotLoaded bool `json:"snapshotLoaded"`
	// SnapshotFallbacks counts newer snapshots that failed validation and
	// were skipped in favour of an older generation.
	SnapshotFallbacks int `json:"snapshotFallbacks"`
	// ReplayedRecords is the journal suffix length replayed on top of the
	// snapshot; zero on a warm restart.
	ReplayedRecords int `json:"replayedRecords"`
	// TornTail is true when the journal ended in a torn, corrupt, or
	// sequence-discontinuous record that recovery truncated.
	TornTail bool `json:"tornTail"`
	// LastSeq is the sequence number of the last durable record.
	LastSeq uint64 `json:"lastSeq"`
	// Duration is the wall-clock recovery time.
	Duration time.Duration `json:"durationNs"`
}

// Store is the durable journal + snapshot engine. All methods are safe for
// concurrent use.
type Store struct {
	fs   FS
	dir  string
	opts Options

	mu           sync.Mutex
	wal          File
	gen          uint64
	nextSeq      uint64
	appendsSince int
	source       func() *State
	stats        Stats
	info         RecoveryInfo
	recovered    *State
	failed       error
	closed       bool
}

// snapshotEnvelope is the decoded body of a snapshot file.
type snapshotEnvelope struct {
	Generation uint64 `json:"generation"`
	LastSeq    uint64 `json:"lastSeq"`
	State      *State `json:"state"`
}

func snapshotName(gen uint64) string { return fmt.Sprintf("snapshot-%08d.db", gen) }
func walName(gen uint64) string      { return fmt.Sprintf("wal-%08d.log", gen) }

// Open mounts the store at dir, performing full recovery: it loads the
// newest snapshot that validates (falling back across generations on
// corruption), chain-replays the journal suffix with strict sequence
// continuity, truncates any torn tail, and positions the journal for
// appending. The recovered state — nil on a cold start — is available via
// RecoveredState.
func Open(fsys FS, dir string, opts Options) (*Store, error) {
	start := time.Now()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}

	var snapGens, walGens []uint64
	for _, name := range names {
		var gen uint64
		switch {
		case matchGen(name, "snapshot-%08d.tmp", &gen):
			// An interrupted snapshot write; the rename never happened, so
			// the generation it was building does not exist.
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("store: removing stale %s: %w", name, err)
			}
		case matchGen(name, "snapshot-%08d.db", &gen):
			snapGens = append(snapGens, gen)
		case matchGen(name, "wal-%08d.log", &gen):
			walGens = append(walGens, gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	s := &Store{fs: fsys, dir: dir, opts: opts, nextSeq: 1}

	// Newest snapshot that validates wins; corrupt ones are skipped and
	// counted so operators can see the fallback happened.
	var base *State
	for i := len(snapGens) - 1; i >= 0; i-- {
		env, err := readSnapshot(fsys, filepath.Join(dir, snapshotName(snapGens[i])))
		if err != nil {
			s.info.SnapshotFallbacks++
			continue
		}
		base = env.State
		s.gen = env.Generation
		s.nextSeq = env.LastSeq + 1
		s.info.SnapshotLoaded = true
		break
	}
	s.info.Generation = s.gen

	// Chain-replay journal generations from the snapshot's onward. Strict
	// sequence continuity: a gap (possible only after a mid-chain torn
	// tail) ends replay — later records describe state we cannot reach.
	var records []*Record
	activeGen := s.gen
	ended := false // replay hit a gap or torn tail before the last generation's end
	for _, g := range walGens {
		if g < s.gen {
			continue
		}
		path := filepath.Join(dir, walName(g))
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", path, err)
		}
		payloads, validLen, torn := decodeFrames(data)
		stop := false
		consumed := int64(0)
		for _, p := range payloads {
			rec := &Record{}
			if err := json.Unmarshal(p, rec); err != nil {
				return nil, fmt.Errorf("store: decoding record in %s: %w", path, err)
			}
			if rec.Seq != s.nextSeq {
				stop = true
				break
			}
			consumed += int64(frameHeaderSize + len(p))
			records = append(records, rec)
			s.nextSeq++
		}
		// Both endings truncate the journal where replay stopped: a torn
		// tail at the last whole frame, a sequence gap at the last record
		// that chained. The gap's stale frames (an abandoned timeline left
		// by an earlier torn-tail truncation) must go, or appends would land
		// behind frames every future recovery stops at — losing them.
		switch {
		case stop:
			s.info.TornTail = true
			if err := fsys.Truncate(path, consumed); err != nil {
				return nil, fmt.Errorf("store: truncating stale suffix of %s: %w", path, err)
			}
		case torn:
			s.info.TornTail = true
			if err := fsys.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
			}
		}
		activeGen = g
		if stop || torn {
			ended = true
			break
		}
	}
	// When replay ended early, files of later generations belong to the
	// same abandoned timeline: their records cannot chain from any state we
	// can reach (a snapshot there would have been the recovery base were it
	// valid). Remove them so the next boot replays only the live timeline.
	if ended {
		for _, g := range walGens {
			if g > activeGen {
				if err := fsys.Remove(filepath.Join(dir, walName(g))); err != nil {
					return nil, fmt.Errorf("store: removing stale %s: %w", walName(g), err)
				}
			}
		}
		for _, g := range snapGens {
			if g > activeGen {
				if err := fsys.Remove(filepath.Join(dir, snapshotName(g))); err != nil {
					return nil, fmt.Errorf("store: removing stale %s: %w", snapshotName(g), err)
				}
			}
		}
	}
	if len(records) > 0 {
		state, err := Replay(base, records)
		if err != nil {
			return nil, err
		}
		base = state
	}
	s.recovered = base
	s.gen = activeGen
	s.info.Generation = activeGen
	s.info.ReplayedRecords = len(records)
	s.info.LastSeq = s.nextSeq - 1

	wal, err := fsys.OpenAppend(filepath.Join(dir, walName(s.gen)))
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	s.wal = wal
	s.info.Duration = time.Since(start)
	return s, nil
}

// matchGen parses names like "wal-%08d.log" and extracts the generation.
func matchGen(name, pattern string, gen *uint64) bool {
	var g uint64
	n, err := fmt.Sscanf(name, pattern, &g)
	if err != nil || n != 1 {
		return false
	}
	// Round-trip to reject suffix garbage Sscanf would tolerate.
	if fmt.Sprintf(pattern, g) != name {
		return false
	}
	*gen = g
	return true
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(fsys FS, path string) (*snapshotEnvelope, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, snapshotMagic) {
		return nil, fmt.Errorf("store: %s: bad magic", path)
	}
	payloads, _, torn := decodeFrames(data[len(snapshotMagic):])
	if torn || len(payloads) != 1 {
		return nil, fmt.Errorf("store: %s: corrupt snapshot frame", path)
	}
	env := &snapshotEnvelope{}
	if err := json.Unmarshal(payloads[0], env); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if env.State == nil {
		return nil, fmt.Errorf("store: %s: empty snapshot state", path)
	}
	return env, nil
}

// SetSnapshotSource registers the callback automatic snapshots capture
// state from. The callback runs with the store lock held, during Append,
// under whatever locks the appender itself holds — it must not acquire
// locks that could invert with them.
func (s *Store) SetSnapshotSource(source func() *State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.source = source
}

// RecoveredState returns the state reconstructed by Open, or nil on a cold
// start. The caller owns it.
func (s *Store) RecoveredState() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// RecoveryInfo reports what Open found on disk.
func (s *Store) RecoveryInfo() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// Stats returns a copy of the durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LastSeq returns the sequence number of the last durable record.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// Generation returns the current snapshot generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Append assigns the record its sequence number, frames it, and makes it
// durable (write + fsync) before returning. An error means the record must
// not be acknowledged; after a write or fsync failure the store wedges and
// refuses further appends, because the journal tail state is unknowable.
func (s *Store) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if s.failed != nil {
		return fmt.Errorf("store: journal wedged by earlier error: %w", s.failed)
	}
	rec.Seq = s.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	if _, err := s.wal.Write(encodeFrame(payload)); err != nil {
		s.failed = err
		return fmt.Errorf("store: journal write: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.failed = err
		return fmt.Errorf("store: journal fsync: %w", err)
	}
	s.nextSeq++
	s.appendsSince++
	s.stats.Appends++
	s.stats.Fsyncs++

	// The record is durable; an automatic snapshot failing here must not
	// turn a successful append into an error, so it only counts.
	if s.opts.SnapshotEvery > 0 && s.appendsSince >= s.opts.SnapshotEvery && s.source != nil {
		if err := s.snapshotLocked(s.source()); err != nil {
			s.stats.SnapshotFailures++
		}
	}
	return nil
}

// SnapshotNow takes a snapshot immediately using the registered source
// (janusd calls this on graceful shutdown, so the next boot replays zero
// records).
func (s *Store) SnapshotNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	if s.source == nil {
		return fmt.Errorf("store: no snapshot source registered")
	}
	return s.snapshotLocked(s.source())
}

// snapshotLocked writes a checksummed snapshot of state atomically
// (write-temp, fsync, rename, directory fsync via FS.Rename), rotates the
// journal to the next generation, and garbage-collects old generations.
func (s *Store) snapshotLocked(state *State) error {
	if state == nil {
		return fmt.Errorf("store: snapshot source returned nil state")
	}
	newGen := s.gen + 1
	env := snapshotEnvelope{Generation: newGen, LastSeq: s.nextSeq - 1, State: state}
	payload, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}

	tmpPath := filepath.Join(s.dir, fmt.Sprintf("snapshot-%08d.tmp", newGen))
	f, err := s.fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	_, werr := f.Write(snapshotMagic)
	if werr == nil {
		_, werr = f.Write(encodeFrame(payload))
	}
	if werr == nil {
		werr = f.Sync()
	}
	closeErr := f.Close()
	if werr == nil {
		werr = closeErr
	}
	if werr != nil {
		return fmt.Errorf("store: writing snapshot: %w", werr)
	}
	// Create the next generation's journal BEFORE publishing the snapshot:
	// were the snapshot published first and the journal create then failed,
	// appends would keep landing in the old generation's journal, which
	// recovery — starting from the published snapshot — never reads.
	wal, err := s.fs.Create(filepath.Join(s.dir, walName(newGen)))
	if err != nil {
		return fmt.Errorf("store: rotating journal: %w", err)
	}
	if err := s.fs.Rename(tmpPath, filepath.Join(s.dir, snapshotName(newGen))); err != nil {
		// The unpublished generation's empty journal is harmless if these
		// fail: recovery chains through an empty journal untruncated.
		if closeErr := wal.Close(); closeErr != nil {
			s.stats.GCFailures++
		}
		if rmErr := s.fs.Remove(filepath.Join(s.dir, walName(newGen))); rmErr != nil {
			s.stats.GCFailures++
		}
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}

	// The snapshot is durable: swap in the rotated journal so the suffix
	// stays short, then retire generations beyond the retention window.
	if err := s.wal.Close(); err != nil {
		// The old journal is fully synced; a close failure loses nothing.
		s.stats.GCFailures++
	}
	s.wal = wal
	s.gen = newGen
	s.appendsSince = 0
	s.stats.Snapshots++

	keep := uint64(s.opts.keep())
	if newGen >= keep {
		cutoff := newGen - keep
		names, err := s.fs.ReadDir(s.dir)
		if err != nil {
			s.stats.GCFailures++
			return nil
		}
		for _, name := range names {
			var g uint64
			old := (matchGen(name, "snapshot-%08d.db", &g) || matchGen(name, "wal-%08d.log", &g)) && g <= cutoff
			if !old {
				continue
			}
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				s.stats.GCFailures++
			}
		}
	}
	return nil
}

// Close fsyncs and closes the journal. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	syncErr := s.wal.Sync()
	closeErr := s.wal.Close()
	if s.failed != nil {
		// Already wedged; sync/close errors here carry no new information.
		return nil
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
