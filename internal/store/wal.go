package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Journal frame layout: a 4-byte little-endian payload length, a 4-byte
// little-endian CRC32 (IEEE) of the payload, then the payload itself. A
// record is valid only if the full frame is present and the checksum
// matches; anything else is a torn tail and recovery truncates there.
const frameHeaderSize = 8

// maxFrameSize bounds a single record so a corrupt length field cannot make
// recovery attempt a multi-gigabyte read.
const maxFrameSize = 1 << 26 // 64 MiB

// encodeFrame wraps a payload in the length+CRC32 journal frame.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// decodeFrames splits a journal file's bytes into frame payloads. It stops
// at the first incomplete or checksum-failing frame — the torn tail left by
// a crash mid-append — and reports the byte length of the valid prefix plus
// whether a tail was discarded. Bytes past the first bad frame are never
// trusted: a torn length field makes everything after it unframeable.
func decodeFrames(data []byte) (payloads [][]byte, validLen int64, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return payloads, int64(off), false
		}
		if len(data)-off < frameHeaderSize {
			return payloads, int64(off), true
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxFrameSize || len(data)-off-frameHeaderSize < int(length) {
			return payloads, int64(off), true
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, int64(off), true
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int(length)
	}
}
