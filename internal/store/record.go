// Package store is janusd's durability layer: a length+CRC32-framed,
// fsync'd write-ahead journal of runtime events plus periodic atomic
// snapshots of the full runtime state, in the shape of OPA's transactional
// storage with bundle activation. Recovery loads the newest valid snapshot
// and replays the journal suffix, truncating at the first torn or corrupt
// record, so recovery cost scales with the log written since the last
// snapshot rather than with the history of the deployment.
//
// Records are state deltas, not solver inputs: each one carries the
// post-mutation configuration result, the authoritative quarantine and
// failed-link sets, topology deltas, and counter deltas, so replay
// reconstructs runtime state bit-for-bit without ever re-running the
// optimizer. The filesystem is abstracted (FS) so the seeded CrashFS can
// kill writes mid-record at every injected crash point; `make crashsoak`
// sweeps those points and asserts recovery always lands on a journal
// boundary whose state matches a never-crashed reference runtime exactly.
package store

import (
	"encoding/json"
	"fmt"

	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Kind classifies a journal record by the runtime event that produced it.
type Kind string

// Journal record kinds. Replay does not branch on the kind beyond
// separating writer-graph records from runtime records — every runtime
// record carries its full authoritative delta — but the kind makes the
// journal auditable by operators.
const (
	// KindConfigure is an initial configuration or a composed-graph swap:
	// the record carries the full topology and composed graph.
	KindConfigure Kind = "configure"
	// KindReconfigure is a mobility or membership event that re-solved.
	KindReconfigure Kind = "reconfigure"
	// KindLinkFail and KindLinkRestore bracket a link failure.
	KindLinkFail    Kind = "linkfail"
	KindLinkRestore Kind = "linkrestore"
	// KindTick is a clock advance, including any temporal-period
	// transitions (tier changes ride along in the result and metrics).
	KindTick Kind = "tick"
	// KindCounter is a stateful-event count that did not reroute.
	KindCounter Kind = "counter"
	// KindEscalate is a stateful escalation onto a reserved path (or the
	// full reconfiguration when no reservation existed).
	KindEscalate Kind = "escalate"
	// KindQuarantine marks an event whose install quarantined a switch.
	KindQuarantine Kind = "quarantine"
	// KindRollback records an event that failed and was rolled back; its
	// deltas capture whatever partial state (topology changes, counters,
	// quarantines, metrics) survived the rollback.
	KindRollback Kind = "rollback"
	// KindWriterPut / KindWriterDelete journal a policy writer's graph
	// submission or removal on the server's northbound API.
	KindWriterPut    Kind = "writerput"
	KindWriterDelete Kind = "writerdel"
)

// TopoOp is one topology mutation, replayed through the same topo methods
// the live runtime used.
type TopoOp struct {
	Op       string      `json:"op"`
	Endpoint string      `json:"endpoint,omitempty"`
	Node     topo.NodeID `json:"node,omitempty"`
	Labels   []string    `json:"labels,omitempty"`
	A        topo.NodeID `json:"a,omitempty"`
	B        topo.NodeID `json:"b,omitempty"`
	Capacity float64     `json:"capacityMbps,omitempty"`
}

// Topology operation names.
const (
	TopoMove        = "move"
	TopoRelabel     = "relabel"
	TopoAddEndpoint = "add-endpoint"
	TopoRemoveLink  = "remove-link"
	TopoAddLink     = "add-link"
)

// FailedLink remembers the capacity of a removed link so recovery can
// restore it on demand, exactly as the live runtime would have.
type FailedLink struct {
	From         topo.NodeID `json:"from"`
	To           topo.NodeID `json:"to"`
	CapacityMbps float64     `json:"capacityMbps"`
}

// CounterDelta is one stateful event-counter increment.
type CounterDelta struct {
	Src   string       `json:"src"`
	Dst   string       `json:"dst"`
	Event policy.Event `json:"event"`
	Delta int          `json:"delta"`
}

// Record is one framed journal entry: the event that happened plus the
// state deltas needed to reconstruct the post-event runtime without
// re-solving. Quarantined, FailedLinks, and Metrics are authoritative full
// values (they are small); the topology and counters are deltas.
type Record struct {
	// Seq is the journal sequence number, assigned by Append; records
	// replay strictly in sequence and a gap truncates recovery.
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`
	Hour int    `json:"hour"`
	// Cause carries the event's error text for rollback records.
	Cause string `json:"cause,omitempty"`

	// Result is the active configuration after the event (volatile solve
	// timings zeroed so recovery is byte-reproducible).
	Result *core.Result `json:"result,omitempty"`
	// Topo and Graph are present on configure records only: the full
	// topology and composed policy graph the configuration was solved for.
	Topo  *topo.Topology `json:"topo,omitempty"`
	Graph *compose.Graph `json:"graph,omitempty"`

	TopoOps     []TopoOp        `json:"topoOps,omitempty"`
	Counter     *CounterDelta   `json:"counter,omitempty"`
	Quarantined []topo.NodeID   `json:"quarantined,omitempty"`
	FailedLinks []FailedLink    `json:"failedLinks,omitempty"`
	Tier        string          `json:"tier,omitempty"`
	Metrics     json.RawMessage `json:"metrics,omitempty"`

	// Writer names the policy writer for writer-graph records.
	Writer      string        `json:"writer,omitempty"`
	WriterGraph *policy.Graph `json:"writerGraph,omitempty"`
}

// State is the full serializable runtime state: what a snapshot holds and
// what recovery hands back. Runtime fields reconstruct the engine
// (Runtime.Restore); Writers reconstructs the server's northbound graph
// registry.
type State struct {
	Hour        int                             `json:"hour"`
	Topo        *topo.Topology                  `json:"topo,omitempty"`
	Graph       *compose.Graph                  `json:"graph,omitempty"`
	Result      *core.Result                    `json:"result,omitempty"`
	Counters    map[string]map[policy.Event]int `json:"counters,omitempty"`
	Quarantined []topo.NodeID                   `json:"quarantined,omitempty"`
	FailedLinks []FailedLink                    `json:"failedLinks,omitempty"`
	Metrics     json.RawMessage                 `json:"metrics,omitempty"`
	Writers     map[string]*policy.Graph        `json:"writers,omitempty"`
}

// Replay folds journal records (in sequence order) into a starting state —
// nil means the empty pre-boot state — and returns the reconstructed
// state. Replay never re-runs the solver: records carry post-state.
func Replay(start *State, records []*Record) (*State, error) {
	state := start
	if state == nil {
		state = &State{}
	}
	for _, rec := range records {
		if err := apply(state, rec); err != nil {
			return nil, fmt.Errorf("store: replaying record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
	}
	return state, nil
}

// apply folds one record into the state.
func apply(state *State, rec *Record) error {
	switch rec.Kind {
	case KindWriterPut:
		if rec.Writer == "" || rec.WriterGraph == nil {
			return fmt.Errorf("writer record missing name or graph")
		}
		if state.Writers == nil {
			state.Writers = map[string]*policy.Graph{}
		}
		state.Writers[rec.Writer] = rec.WriterGraph
		return nil
	case KindWriterDelete:
		delete(state.Writers, rec.Writer)
		return nil
	}

	// Runtime records: configure records refresh topology and graph
	// wholesale; every record's topology deltas, counter delta, and
	// authoritative sets then apply on top.
	if rec.Topo != nil {
		state.Topo = rec.Topo
	}
	if rec.Graph != nil {
		state.Graph = rec.Graph
	}
	if len(rec.TopoOps) > 0 && state.Topo == nil {
		return fmt.Errorf("topology delta before any configure record")
	}
	for _, op := range rec.TopoOps {
		if err := applyTopoOp(state.Topo, op); err != nil {
			return err
		}
	}
	if rec.Counter != nil {
		if state.Counters == nil {
			state.Counters = map[string]map[policy.Event]int{}
		}
		flow := rec.Counter.Src + "->" + rec.Counter.Dst
		if state.Counters[flow] == nil {
			state.Counters[flow] = map[policy.Event]int{}
		}
		state.Counters[flow][rec.Counter.Event] += rec.Counter.Delta
	}
	if rec.Result != nil {
		state.Result = rec.Result
	}
	state.Hour = rec.Hour
	state.Quarantined = rec.Quarantined
	state.FailedLinks = rec.FailedLinks
	state.Metrics = rec.Metrics
	return nil
}

func applyTopoOp(t *topo.Topology, op TopoOp) error {
	switch op.Op {
	case TopoMove:
		return t.MoveEndpoint(op.Endpoint, op.Node)
	case TopoRelabel:
		return t.RelabelEndpoint(op.Endpoint, op.Labels...)
	case TopoAddEndpoint:
		return t.AddEndpoint(op.Endpoint, op.Node, op.Labels...)
	case TopoRemoveLink:
		return t.RemoveLink(op.A, op.B)
	case TopoAddLink:
		return t.AddLink(op.A, op.B, op.Capacity)
	default:
		return fmt.Errorf("unknown topology op %q", op.Op)
	}
}
