package workload

import (
	"context"
	"math/rand"
	"testing"

	"janus/internal/core"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/runtime"
	"janus/internal/topo"
)

func TestGenerateBasics(t *testing.T) {
	w, err := Generate("Ans", Spec{Policies: 10, EndpointsPerPolicy: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Graph.Policies); got != 10 {
		t.Errorf("policies = %d, want 10", got)
	}
	// 3 sources + 1 destination per policy.
	if got := len(w.Topo.Endpoints); got != 10*4 {
		t.Errorf("endpoints = %d, want 40", got)
	}
	if err := w.Topo.Validate(); err != nil {
		t.Errorf("generated topology invalid: %v", err)
	}
	// Every policy must have a positive bandwidth in [10,30].
	for _, p := range w.Graph.Policies {
		bw := p.Default.QoS.BandwidthMbps
		if bw < 10 || bw > 30 {
			t.Errorf("policy %d bandwidth %g outside [10,30]", p.ID, bw)
		}
		if len(p.Default.Chain) > 2 {
			t.Errorf("policy %d chain %v longer than 2", p.ID, p.Default.Chain)
		}
	}
	// NF boxes exist for every pool kind.
	for _, kind := range NFPool {
		if len(w.Topo.NodesOfKind(topo.NFBox, kind)) == 0 {
			t.Errorf("no %s boxes placed", kind)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("Ans", Spec{Policies: 5, EndpointsPerPolicy: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("Ans", Spec{Policies: 5, EndpointsPerPolicy: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Topo.Links) != len(b.Topo.Links) || len(a.Topo.Endpoints) != len(b.Topo.Endpoints) {
		t.Fatal("same seed should give identical workloads")
	}
	for i := range a.Graph.Policies {
		if a.Graph.Policies[i].Default.QoS.BandwidthMbps != b.Graph.Policies[i].Default.QoS.BandwidthMbps {
			t.Fatal("bandwidths differ across identical seeds")
		}
	}
	c, err := Generate("Ans", Spec{Policies: 5, EndpointsPerPolicy: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Graph.Policies {
		if a.Graph.Policies[i].Default.QoS.BandwidthMbps != c.Graph.Policies[i].Default.QoS.BandwidthMbps {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different bandwidths")
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	if _, err := Generate("Ans", Spec{Policies: 0, EndpointsPerPolicy: 1}); err == nil {
		t.Error("zero policies should error")
	}
	if _, err := Generate("Ans", Spec{Policies: 1, EndpointsPerPolicy: 0}); err == nil {
		t.Error("zero endpoints should error")
	}
	if _, err := Generate("Atlantis", Spec{Policies: 1, EndpointsPerPolicy: 1}); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestPriorityClasses(t *testing.T) {
	w, err := Generate("Ans", Spec{
		Policies: 9, EndpointsPerPolicy: 1, Seed: 3,
		PriorityClasses: []float64{8, 4, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, p := range w.Graph.Policies {
		counts[p.Weight]++
	}
	if counts[8] != 3 || counts[4] != 3 || counts[2] != 3 {
		t.Errorf("weight distribution = %v, want 3 each", counts)
	}
}

func TestTimePeriods(t *testing.T) {
	w, err := Generate("Ans", Spec{
		Policies: 10, EndpointsPerPolicy: 1, Seed: 4, TimePeriods: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	periods := w.Graph.Periods()
	if len(periods) < 5 {
		t.Errorf("periods = %v, want at least 5 boundaries", periods)
	}
	// Fig 6 semantics: every policy spans the whole day — at each boundary
	// exactly one of its temporal edges is active, and each policy's peak
	// window doubles the bandwidth ask.
	for _, p := range w.Graph.Policies {
		var bws []float64
		for _, h := range periods {
			active := 0
			for _, e := range p.AllEdges() {
				if e.Cond.Stateful.IsAlways() && e.Cond.Window.Contains(h) {
					active++
					bws = append(bws, e.QoS.BandwidthMbps)
				}
			}
			if active != 1 {
				t.Fatalf("policy %d: %d temporal edges active at %dh, want 1", p.ID, active, h)
			}
		}
		// One window (the peak) asks for double.
		maxBW, minBW := bws[0], bws[0]
		for _, b := range bws {
			if b > maxBW {
				maxBW = b
			}
			if b < minBW {
				minBW = b
			}
		}
		if maxBW < 2*minBW-1e-9 {
			t.Errorf("policy %d: peak bandwidth %v not double the base %v", p.ID, maxBW, minBW)
		}
	}
}

func TestRoutableChains(t *testing.T) {
	w, err := Generate("Ans", Spec{Policies: 12, EndpointsPerPolicy: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Every policy's default chain must be routable for every pair — the
	// generator trims unroutable chains.
	e := paths.NewEnumerator(w.Topo)
	for _, p := range w.Graph.Policies {
		srcs := w.Topo.EndpointsMatching(p.Src)
		dsts := w.Topo.EndpointsMatching(p.Dst)
		for _, s := range srcs {
			for _, d := range dsts {
				se, _ := w.Topo.EndpointByName(s)
				de, _ := w.Topo.EndpointByName(d)
				got, err := e.Valid(se.Attach, de.Attach, p.Default.Chain)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) == 0 {
					t.Errorf("policy %d pair %s->%s: chain %v unroutable", p.ID, s, d, p.Default.Chain)
				}
			}
		}
	}
}

func TestStatefulEdges(t *testing.T) {
	w, err := Generate("Ans", Spec{
		Policies: 4, EndpointsPerPolicy: 1, Seed: 5, StatefulEdges: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Graph.Policies {
		if len(p.NonDefault) != 2 {
			t.Errorf("policy %d has %d escalation edges, want 2", p.ID, len(p.NonDefault))
		}
		for _, e := range p.NonDefault {
			if e.Cond.Stateful.IsAlways() {
				t.Errorf("escalation edge of policy %d has no stateful condition", p.ID)
			}
		}
	}
}

func TestWorkloadIsConfigurable(t *testing.T) {
	// End-to-end smoke: a generated workload must be solvable by the
	// configurator with a meaningful satisfaction rate.
	w, err := Generate("Ans", Spec{Policies: 8, EndpointsPerPolicy: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(w.Topo, w.Graph, core.Config{CandidatePaths: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() == 0 {
		t.Error("generated workload should satisfy at least one policy")
	}
	for _, l := range res.Links {
		if l.Reserved > l.Capacity+1e-6 {
			t.Errorf("link %d->%d oversubscribed", l.From, l.To)
		}
	}
}

func TestMoveRandomEndpoints(t *testing.T) {
	w, err := Generate("Ans", Spec{Policies: 5, EndpointsPerPolicy: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	moved := w.MoveRandomEndpoints(rng, 5)
	if len(moved) != 5 {
		t.Errorf("moved %d endpoints, want 5", len(moved))
	}
	if err := w.Topo.Validate(); err != nil {
		t.Errorf("topology invalid after moves: %v", err)
	}
}

func TestPeriodWindow(t *testing.T) {
	for n := 2; n <= 6; n++ {
		covered := make([]bool, policy.HoursPerDay)
		for k := 0; k < n; k++ {
			win := periodWindow(k, n)
			for h := 0; h < policy.HoursPerDay; h++ {
				if win.Contains(h) {
					covered[h] = true
				}
			}
		}
		for h, ok := range covered {
			if !ok {
				t.Errorf("n=%d: hour %d not covered by any window", n, h)
			}
		}
	}
}

func TestGenerateTraceAndReplay(t *testing.T) {
	w, err := Generate("Ans", Spec{
		Policies: 6, EndpointsPerPolicy: 2, TimePeriods: 2, StatefulEdges: 1, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := w.GenerateTrace(TraceSpec{
		Length: 20, Moves: 4, Relabels: 2, Counters: 4, HourTicks: 2, LinkFails: 1, Seed: 31,
	})
	if len(tr.Events) == 0 {
		t.Fatal("trace should not be empty")
	}
	kinds := map[EventKind]int{}
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	if kinds[EvMove] == 0 || kinds[EvCounter] == 0 {
		t.Errorf("trace mix lacks moves or counters: %v", kinds)
	}
	if kinds[EvLinkFail] > 1 {
		t.Errorf("at most one link failure per trace, got %d", kinds[EvLinkFail])
	}

	conf, err := core.New(w.Topo, w.Graph, core.Config{CandidatePaths: 5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := tr.Replay(context.Background(), rt)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Error("no trace events applied")
	}
	// After the storm the dataplane must still verify.
	if problems := rt.Verify(); len(problems) != 0 {
		t.Errorf("verification problems after trace replay: %v", problems)
	}
}

func TestTraceDeterministic(t *testing.T) {
	w, err := Generate("Ans", Spec{Policies: 4, EndpointsPerPolicy: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	spec := TraceSpec{Length: 15, Moves: 3, Counters: 3, HourTicks: 1, Seed: 5}
	a := w.GenerateTrace(spec)
	b := w.GenerateTrace(spec)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed should give same trace length")
	}
	for i := range a.Events {
		if a.Events[i].Kind != b.Events[i].Kind || a.Events[i].Endpoint != b.Events[i].Endpoint {
			t.Fatalf("event %d differs", i)
		}
	}
}
