// Package workload generates the synthetic policy datasets of the paper's
// evaluation (§7): "each policy can be randomly assigned 0 to 2 NFs and a
// QoS bandwidth requirement between 10 to 30 Mbps. In all our experiments,
// we randomly attach different endpoints and NFs to different nodes in the
// network. We also randomly assign different NFs to 10-30% of nodes."
//
// All generation is seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"janus/internal/compose"
	"janus/internal/paths"
	"janus/internal/policy"
	"janus/internal/topo"
)

// NFPool is the middlebox kinds the generator draws service chains from.
var NFPool = []policy.NFKind{
	policy.Firewall,
	policy.LoadBalance,
	policy.LightIDS,
	policy.ByteCounter,
}

// Spec parameterizes a generated workload.
type Spec struct {
	// Policies is the number of group policies.
	Policies int
	// EndpointsPerPolicy is the number of source endpoints per policy;
	// each policy gets one destination endpoint, so this equals the number
	// of <src,dst> pairs (the paper's "endpoints belonging to each
	// policy").
	EndpointsPerPolicy int
	// MinBW and MaxBW bound the per-policy bandwidth requirement in Mbps;
	// zero means the paper's 10–30 Mbps.
	MinBW, MaxBW float64
	// MaxNFs bounds the service-chain length (paper: 0–2).
	MaxNFs int
	// NFNodeFraction is the fraction of switches carrying NF boxes
	// (paper: 10–30%; default 0.2).
	NFNodeFraction float64
	// NFLinkCapacity is the capacity of switch–NF attachment links
	// (default 1000 Mbps so NF links are not the artificial bottleneck).
	NFLinkCapacity float64
	// Seed drives all randomness.
	Seed int64

	// PriorityClasses, when non-empty, splits policies evenly across
	// weight classes (§7.5 uses {8,4,2}).
	PriorityClasses []float64
	// TimePeriods, when > 1, makes every policy temporal in the Fig 6
	// style: one edge per equal-width daily window with the bandwidth
	// requirement varying by window (a per-policy "peak" window asks for
	// double). Policies therefore span all periods — path persistence
	// across period boundaries is possible and the §5.5 greedy chain has
	// something to preserve.
	TimePeriods int
	// StatefulEdges adds this many non-default escalation edges per policy
	// (§7.3 uses 2), each requiring one extra NF.
	StatefulEdges int
}

func (s Spec) withDefaults() Spec {
	if s.MinBW == 0 {
		s.MinBW = 10
	}
	if s.MaxBW == 0 {
		s.MaxBW = 30
	}
	if s.MaxNFs == 0 {
		s.MaxNFs = 2
	}
	if s.NFNodeFraction == 0 {
		s.NFNodeFraction = 0.2
	}
	if s.NFLinkCapacity == 0 {
		s.NFLinkCapacity = 1000
	}
	return s
}

// Workload is a generated evaluation scenario: the topology (with endpoints
// and NF boxes placed) and the composed policy graph.
type Workload struct {
	Topo  *topo.Topology
	Graph *compose.Graph
	Spec  Spec
}

// Generate builds a workload on the named Zoo-equivalent topology.
func Generate(topoName string, spec Spec) (*Workload, error) {
	tp, err := topo.Zoo(topoName)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return GenerateOn(tp, spec)
}

// GenerateOn builds a workload on an existing topology (NFs and endpoints
// are added to it).
func GenerateOn(tp *topo.Topology, spec Spec) (*Workload, error) {
	spec = spec.withDefaults()
	if spec.Policies <= 0 {
		return nil, fmt.Errorf("workload: Policies must be positive")
	}
	if spec.EndpointsPerPolicy <= 0 {
		return nil, fmt.Errorf("workload: EndpointsPerPolicy must be positive")
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	if err := tp.PlaceNFs(rng, NFPool, spec.NFNodeFraction, spec.NFLinkCapacity); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	switches := tp.NodesOfKind(topo.Switch, "")
	enum := paths.NewEnumerator(tp)

	var graphs []*policy.Graph
	for i := 0; i < spec.Policies; i++ {
		srcLabel := fmt.Sprintf("G%d-src", i)
		dstLabel := fmt.Sprintf("G%d-dst", i)
		// Source endpoints spread across random switches; one destination.
		for e := 0; e < spec.EndpointsPerPolicy; e++ {
			name := fmt.Sprintf("p%d-e%d", i, e)
			at := switches[rng.Intn(len(switches))]
			if err := tp.AddEndpoint(name, at, srcLabel); err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
		}
		dstName := fmt.Sprintf("p%d-dst", i)
		if err := tp.AddEndpoint(dstName, switches[rng.Intn(len(switches))], dstLabel); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}

		g := policy.NewGraph(fmt.Sprintf("writer%d", i))
		if len(spec.PriorityClasses) > 0 {
			g.Weight = spec.PriorityClasses[i%len(spec.PriorityClasses)]
		}
		bw := spec.MinBW + rng.Float64()*(spec.MaxBW-spec.MinBW)
		chain := routableChain(enum, tp, pairsOfPolicy(tp, i, spec.EndpointsPerPolicy), randomChain(rng, spec.MaxNFs))
		if spec.TimePeriods > 1 {
			// Fig 6 style: the policy spans the whole day; its bandwidth
			// peaks in one window (round-robin across policies so every
			// period is somebody's peak).
			peak := i % spec.TimePeriods
			for w := 0; w < spec.TimePeriods; w++ {
				bwW := bw
				if w == peak {
					bwW = 2 * bw
				}
				g.AddEdge(policy.Edge{
					Src: "Src", Dst: "Dst",
					Chain:   chain,
					QoS:     policy.QoS{BandwidthMbps: bwW},
					Cond:    policy.Condition{Window: periodWindow(w, spec.TimePeriods)},
					Default: w == 0,
				})
			}
		} else {
			g.AddEdge(policy.Edge{
				Src: "Src", Dst: "Dst",
				Chain:   chain,
				QoS:     policy.QoS{BandwidthMbps: bw},
				Default: true,
			})
		}
		for s := 0; s < spec.StatefulEdges; s++ {
			esc := randomChain(rng, spec.MaxNFs)
			if len(esc) == 0 {
				esc = policy.Chain{NFPool[rng.Intn(len(NFPool))]}
			}
			esc = routableChain(enum, tp, pairsOfPolicy(tp, i, spec.EndpointsPerPolicy), esc)
			g.AddEdge(policy.Edge{
				Src: "Src", Dst: "Dst",
				Chain: esc,
				QoS:   policy.QoS{BandwidthMbps: bw},
				Cond: policy.Condition{
					Stateful: policy.WhenAtLeast(policy.FailedConnections, 4*(s+1)+1),
				},
			})
		}
		// Bind graph-local EPG names to the global labels.
		g.AddEPG(policy.NewEPG("Src", srcLabel))
		g.AddEPG(policy.NewEPG("Dst", dstLabel))
		graphs = append(graphs, g)
	}

	cg, err := compose.New(nil).Compose(graphs...)
	if err != nil {
		return nil, fmt.Errorf("workload: composing: %w", err)
	}
	return &Workload{Topo: tp, Graph: cg, Spec: spec}, nil
}

// pairsOfPolicy returns the attachment-switch pairs of policy i's
// endpoints (the generator names them deterministically).
func pairsOfPolicy(tp *topo.Topology, i, eps int) [][2]topo.NodeID {
	dst, ok := tp.EndpointByName(fmt.Sprintf("p%d-dst", i))
	if !ok {
		return nil
	}
	out := make([][2]topo.NodeID, 0, eps)
	for e := 0; e < eps; e++ {
		src, ok := tp.EndpointByName(fmt.Sprintf("p%d-e%d", i, e))
		if !ok {
			continue
		}
		out = append(out, [2]topo.NodeID{src.Attach, dst.Attach})
	}
	return out
}

// routableChain verifies every endpoint pair has at least one valid path
// for the chain, trimming it (then dropping it) otherwise. Policy writers
// fix unsatisfiable intents; keeping them in the workload would make
// rejections reflect routing accidents rather than contention (§7.5
// measures the latter).
func routableChain(enum *paths.Enumerator, tp *topo.Topology, pairs [][2]topo.NodeID, chain policy.Chain) policy.Chain {
	for len(chain) > 0 {
		ok := true
		for _, pr := range pairs {
			got, err := enum.Valid(pr[0], pr[1], chain)
			if err != nil || len(got) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return chain
		}
		chain = chain[:len(chain)-1]
	}
	return nil
}

// randomChain draws 0..maxNFs distinct NF kinds.
func randomChain(rng *rand.Rand, maxNFs int) policy.Chain {
	n := rng.Intn(maxNFs + 1)
	if n == 0 {
		return nil
	}
	perm := rng.Perm(len(NFPool))
	chain := make(policy.Chain, 0, n)
	for i := 0; i < n && i < len(NFPool); i++ {
		chain = append(chain, NFPool[perm[i]])
	}
	return chain
}

// periodWindow returns the k-th of n equal-width daily windows.
func periodWindow(k, n int) policy.TimeWindow {
	width := policy.HoursPerDay / n
	start := k * width
	end := start + width
	if k == n-1 {
		end = 0 // last window wraps to midnight
	}
	return policy.TimeWindow{Start: start, End: end % policy.HoursPerDay}
}

// MoveRandomEndpoints relocates n random endpoints to random switches
// (the endpoint-change workload of Fig 14). Returns the names moved.
func (w *Workload) MoveRandomEndpoints(rng *rand.Rand, n int) []string {
	switches := w.Topo.NodesOfKind(topo.Switch, "")
	eps := w.Topo.Endpoints
	if len(eps) == 0 {
		return nil
	}
	moved := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ep := eps[rng.Intn(len(eps))]
		to := switches[rng.Intn(len(switches))]
		if err := w.Topo.MoveEndpoint(ep.Name, to); err == nil {
			moved = append(moved, ep.Name)
		}
	}
	return moved
}
