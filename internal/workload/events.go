package workload

import (
	"context"
	"fmt"
	"math/rand"

	"janus/internal/policy"
	"janus/internal/topo"
)

// EventKind classifies trace events (the §2.2 dynamics).
type EventKind int

// Event kinds.
const (
	EvMove EventKind = iota
	EvRelabel
	EvCounter
	EvHour
	EvLinkFail
)

func (k EventKind) String() string {
	switch k {
	case EvMove:
		return "move"
	case EvRelabel:
		return "relabel"
	case EvCounter:
		return "counter"
	case EvHour:
		return "hour"
	case EvLinkFail:
		return "linkfail"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one dynamic occurrence in a trace.
type Event struct {
	Kind     EventKind
	Endpoint string      // move/relabel/counter src
	Peer     string      // counter dst
	Node     topo.NodeID // move target / linkfail endpoint A
	Node2    topo.NodeID // linkfail endpoint B
	Labels   []string    // relabel
	Hour     int         // hour tick
	EventSym policy.Event
	Delta    int
}

// Trace is a seeded sequence of dynamics for failure injection.
type Trace struct {
	Events []Event
}

// TraceSpec weights the event mix; weights need not sum to anything.
type TraceSpec struct {
	Length    int
	Moves     int
	Relabels  int
	Counters  int
	HourTicks int
	LinkFails int
	Seed      int64
}

// GenerateTrace draws a random event sequence against the workload's
// topology. Link failures pick core switch-switch links only, and at most
// one per trace (repeated failures could disconnect small topologies).
func (w *Workload) GenerateTrace(spec TraceSpec) *Trace {
	rng := rand.New(rand.NewSource(spec.Seed))
	total := spec.Moves + spec.Relabels + spec.Counters + spec.HourTicks + spec.LinkFails
	if total <= 0 {
		total = 1
	}
	if spec.Length <= 0 {
		spec.Length = 10
	}
	switches := w.Topo.NodesOfKind(topo.Switch, "")
	tr := &Trace{}
	hour := 0
	linkFailed := false
	for i := 0; i < spec.Length; i++ {
		roll := rng.Intn(total)
		switch {
		case roll < spec.Moves:
			ep := w.Topo.Endpoints[rng.Intn(len(w.Topo.Endpoints))]
			tr.Events = append(tr.Events, Event{
				Kind: EvMove, Endpoint: ep.Name,
				Node: switches[rng.Intn(len(switches))],
			})
		case roll < spec.Moves+spec.Relabels:
			ep := w.Topo.Endpoints[rng.Intn(len(w.Topo.Endpoints))]
			tr.Events = append(tr.Events, Event{
				Kind: EvRelabel, Endpoint: ep.Name,
				Labels: append([]string(nil), ep.Labels...), // relabel to same set: benign churn
			})
		case roll < spec.Moves+spec.Relabels+spec.Counters:
			// Pick a policy's (src,dst) pair so the counter lands on a flow.
			if len(w.Graph.Policies) == 0 {
				continue
			}
			p := w.Graph.Policies[rng.Intn(len(w.Graph.Policies))]
			srcs := w.Topo.EndpointsMatching(p.Src)
			dsts := w.Topo.EndpointsMatching(p.Dst)
			if len(srcs) == 0 || len(dsts) == 0 {
				continue
			}
			tr.Events = append(tr.Events, Event{
				Kind:     EvCounter,
				Endpoint: srcs[rng.Intn(len(srcs))],
				Peer:     dsts[rng.Intn(len(dsts))],
				EventSym: policy.FailedConnections,
				Delta:    rng.Intn(3) + 1,
			})
		case roll < spec.Moves+spec.Relabels+spec.Counters+spec.HourTicks:
			hour = (hour + rng.Intn(6) + 1) % policy.HoursPerDay
			tr.Events = append(tr.Events, Event{Kind: EvHour, Hour: hour})
		default:
			if linkFailed {
				continue
			}
			// Fail a random switch-switch link.
			for tries := 0; tries < 20; tries++ {
				a := switches[rng.Intn(len(switches))]
				nbrs := w.Topo.Neighbors(a)
				if len(nbrs) < 2 {
					continue // keep the topology connected-ish
				}
				b := nbrs[rng.Intn(len(nbrs))]
				if w.Topo.Nodes[b].Kind != topo.Switch {
					continue
				}
				tr.Events = append(tr.Events, Event{Kind: EvLinkFail, Node: a, Node2: b})
				linkFailed = true
				break
			}
		}
	}
	return tr
}

// Driver is the runtime surface a trace replays against; *runtime.Runtime
// satisfies it. An interface keeps this package free of a runtime
// dependency (runtime already depends on core, whose tests use workload).
type Driver interface {
	MoveEndpoint(ctx context.Context, name string, to topo.NodeID) error
	RelabelEndpoint(ctx context.Context, name string, labels ...string) error
	ReportEvent(ctx context.Context, src, dst string, ev policy.Event, delta int) error
	AdvanceTo(ctx context.Context, hour int) error
	FailLink(ctx context.Context, a, b topo.NodeID) error
}

// Replay applies the trace to a runtime, returning how many events applied
// cleanly; events that become invalid mid-trace (an endpoint already
// matching, a link already gone) are skipped, mirroring a controller that
// drops stale notifications.
func (tr *Trace) Replay(ctx context.Context, rt Driver) (applied int, err error) {
	for _, e := range tr.Events {
		var evErr error
		switch e.Kind {
		case EvMove:
			evErr = rt.MoveEndpoint(ctx, e.Endpoint, e.Node)
		case EvRelabel:
			evErr = rt.RelabelEndpoint(ctx, e.Endpoint, e.Labels...)
		case EvCounter:
			evErr = rt.ReportEvent(ctx, e.Endpoint, e.Peer, e.EventSym, e.Delta)
		case EvHour:
			evErr = rt.AdvanceTo(ctx, e.Hour)
		case EvLinkFail:
			evErr = rt.FailLink(ctx, e.Node, e.Node2)
		}
		if evErr == nil {
			applied++
		}
	}
	return applied, nil
}
