package janus_test

import (
	"testing"

	"janus"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the package doc
// advertises: build graphs, compose, configure, reconfigure.
func TestPublicAPIEndToEnd(t *testing.T) {
	tp := janus.NewTopology("demo")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	lb := tp.AddNF("lb", janus.LoadBalance)
	for _, pair := range [][2]janus.NodeID{{a, lb}, {lb, b}, {a, b}} {
		if err := tp.AddLink(pair[0], pair[1], 1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("m1", a, "Marketing"); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddEndpoint("w1", b, "Web"); err != nil {
		t.Fatal(err)
	}

	g := janus.NewPolicyGraph("web-qos")
	g.AddEdge(janus.Edge{
		Src: "Marketing", Dst: "Web",
		Match: janus.Classifier{Proto: janus.TCP, Ports: []int{80}},
		Chain: janus.Chain{janus.LoadBalance},
		QoS:   janus.QoS{BandwidthMbps: 100},
	})
	composed, err := janus.Compose(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(composed.Policies) != 1 {
		t.Fatalf("composed %d policies, want 1", len(composed.Policies))
	}

	conf, err := janus.NewConfigurator(tp, composed, janus.Config{CandidatePaths: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedCount() != 1 {
		t.Fatalf("satisfied %d, want 1", res.SatisfiedCount())
	}
	next, err := conf.Reconfigure(res)
	if err != nil {
		t.Fatal(err)
	}
	if janus.CountPathChanges(res, next) != 0 {
		t.Error("unchanged environment should keep paths")
	}
}

func TestZooTopologyFacade(t *testing.T) {
	tp, err := janus.ZooTopology("Ans")
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Nodes) != 18 {
		t.Errorf("Ans has %d nodes, want 18", len(tp.Nodes))
	}
	if _, err := janus.ZooTopology("Nowhere"); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestDefaultLabelsFacade(t *testing.T) {
	s := janus.DefaultLabels()
	if s == nil || len(s.Metrics()) == 0 {
		t.Error("default label scheme should define metrics")
	}
}
