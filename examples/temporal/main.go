// Temporal scenario (Fig 6 of the paper): time-of-day policies change the
// composed graph three times a day; the greedy temporal chain keeps path
// changes low across period boundaries, and the §5.6 negotiation shifts
// bandwidth of bottleneck-heavy policies into quieter periods to configure
// more policies overall.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	// A diamond network with a firewall, an L-IDS and a byte counter on
	// separate branches; core links 100 Mbps.
	tp := janus.NewTopology("temporal")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	fw := tp.AddNF("fw1", janus.Firewall)
	ids := tp.AddNF("ids1", janus.LightIDS)
	bc := tp.AddNF("bc1", janus.ByteCounter)
	link := func(x, y janus.NodeID, c float64) {
		if err := tp.AddLink(x, y, c); err != nil {
			log.Fatal(err)
		}
	}
	link(a, fw, 100)
	link(fw, b, 100)
	link(a, ids, 100)
	link(ids, b, 100)
	link(a, bc, 100)
	link(bc, b, 100)
	link(a, b, 60)

	check(tp.AddEndpoint("m1", a, "Mktg"))
	check(tp.AddEndpoint("m2", a, "Mktg"))
	check(tp.AddEndpoint("w1", b, "Web"))
	check(tp.AddEndpoint("i1", a, "IT"))
	check(tp.AddEndpoint("d1", b, "DB"))

	// Fig 6 policy 1: Mktg->Web via FW at 1-9h, via L-IDS at 9-14h, via BC
	// at 14-1h — with a high bandwidth ask during business hours.
	g1 := janus.NewPolicyGraph("mktg-temporal")
	g1.AddEdge(janus.Edge{Src: "Mktg", Dst: "Web",
		Chain: janus.Chain{janus.Firewall}, QoS: janus.QoS{BandwidthMbps: 30},
		Cond: janus.Condition{Window: janus.TimeWindow{Start: 1, End: 9}}})
	g1.AddEdge(janus.Edge{Src: "Mktg", Dst: "Web",
		Chain: janus.Chain{janus.LightIDS}, QoS: janus.QoS{BandwidthMbps: 40},
		Cond: janus.Condition{Window: janus.TimeWindow{Start: 9, End: 14}}})
	g1.AddEdge(janus.Edge{Src: "Mktg", Dst: "Web",
		Chain: janus.Chain{janus.ByteCounter}, QoS: janus.QoS{BandwidthMbps: 20},
		Cond: janus.Condition{Window: janus.TimeWindow{Start: 14, End: 1}}})

	// Fig 6 policy 3: IT->DB via BC at 1-9h with medium bandwidth, plain
	// afterwards — a long-lived transfer that negotiation can shift.
	g2 := janus.NewPolicyGraph("it-backup")
	g2.AddEdge(janus.Edge{Src: "IT", Dst: "DB",
		Chain: janus.Chain{janus.ByteCounter}, QoS: janus.QoS{BandwidthMbps: 50},
		Cond: janus.Condition{Window: janus.TimeWindow{Start: 1, End: 9}}})
	g2.AddEdge(janus.Edge{Src: "IT", Dst: "DB",
		QoS:  janus.QoS{BandwidthMbps: 50},
		Cond: janus.Condition{Window: janus.TimeWindow{Start: 9, End: 1}}})

	composed, err := janus.Compose(nil, g1, g2)
	check(err)
	fmt.Printf("composed graph changes at hours %v\n", composed.Periods())

	conf, err := janus.NewConfigurator(tp, composed, janus.Config{CandidatePaths: 5, Seed: 7})
	check(err)

	// Greedy temporal chain (§5.5).
	chain, err := conf.ConfigureTemporal()
	check(err)
	fmt.Printf("greedy chain: %d configurations across periods, %d cross-period path changes, %v\n",
		chain.TotalConfigured, chain.PathChanges, chain.Duration.Round(1e6))
	for _, res := range chain.Results {
		fmt.Printf("  %2dh: %d/%d configured\n", res.Period, res.SatisfiedCount(), len(res.Configured))
	}

	// Baseline: independent re-solve per period (what Table 5 compares).
	// In this tiny scenario each period's chain requirement forces its own
	// path family, so some cross-period changes are inherent; on larger
	// workloads with stable chains the greedy chain eliminates >90% of
	// them (see EXPERIMENTS.md, Table 5).
	indep, err := conf.ConfigureTemporalIndependent()
	check(err)
	fmt.Printf("independent re-solve: %d cross-period path changes (greedy saves %d)\n",
		indep.PathChanges, indep.PathChanges-chain.PathChanges)

	// Negotiation (§5.6): shift 5%% of bandwidth of the top policies.
	nego, err := conf.Negotiate(chain, 100, 5)
	check(err)
	fmt.Printf("negotiation: %d proposals, %+d policies configured\n",
		len(nego.Proposals), nego.ExtraConfigured)
	for _, p := range nego.Proposals {
		fmt.Printf("  policy %d: -%.0f%% at %dh, +%.0f%% at %dh\n",
			p.Policy, p.Percent, p.From, p.Percent, p.To)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
