// Enterprise scenario (Figs 2–5 of the paper): Marketing/Web and IT/DB
// policies with service chains contend for bandwidth; a stateful IDS
// escalation fires at runtime; an executive's laptop roams; and a policy
// modification shows how Janus localizes path changes.
package main

import (
	"context"
	"fmt"
	"log"

	"janus"
	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/policy"
	"janus/internal/runtime"
	"janus/internal/topo"
)

func main() {
	// Fig 4's topology: seven switches with two L-IDS boxes on parallel
	// segments, a byte counter, and a firewall; all links 100 Mbps.
	tp := topo.NewTopology("enterprise")
	s := map[string]topo.NodeID{}
	for _, n := range []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7"} {
		s[n] = tp.AddSwitch(n)
	}
	lids1 := tp.AddNF("lids1", policy.LightIDS)
	lids2 := tp.AddNF("lids2", policy.LightIDS)
	bc := tp.AddNF("bc1", policy.ByteCounter)
	link := func(a, b topo.NodeID) { check(tp.AddLink(a, b, 100)) }
	link(s["s1"], s["s3"])
	link(s["s1"], bc)
	link(bc, s["s3"])
	link(s["s3"], lids1)
	link(lids1, s["s4"])
	link(s["s3"], s["s4"])
	link(s["s4"], s["s5"])
	link(s["s1"], s["s7"])
	link(s["s7"], lids2)
	link(lids2, s["s2"])
	link(s["s7"], s["s2"])
	link(s["s2"], s["s6"])
	link(s["s6"], s["s5"])
	link(s["s6"], s["s3"])

	check(tp.AddEndpoint("m1", s["s1"], "Nml", "Mktg"))
	check(tp.AddEndpoint("w1", s["s5"], "Nml", "Web"))
	check(tp.AddEndpoint("it1", s["s2"], "Nml", "IT"))
	check(tp.AddEndpoint("db1", s["s3"], "Nml", "DB"))

	// Fig 3's input graphs: Mktg->Web via L-IDS with a stateful H-IDS-style
	// escalation (here: reroute through the second L-IDS), and IT->DB with
	// a high minimum bandwidth.
	g1 := janus.NewPolicyGraph("policy1")
	g1.AddEPG(policy.NewEPG("Mktg", "Nml", "Mktg"))
	g1.AddEPG(policy.NewEPG("Web", "Nml", "Web"))
	g1.AddEdge(janus.Edge{Src: "Mktg", Dst: "Web", Default: true,
		Chain: janus.Chain{janus.LightIDS},
		QoS:   janus.QoS{BandwidthMbps: 20}})
	g1.AddEdge(janus.Edge{Src: "Mktg", Dst: "Web",
		Chain: janus.Chain{janus.LightIDS, janus.ByteCounter},
		QoS:   janus.QoS{BandwidthMbps: 20},
		Cond:  janus.Condition{Stateful: policy.WhenAtLeast(janus.FailedConnections, 5)}})

	g2 := janus.NewPolicyGraph("policy3")
	g2.AddEPG(policy.NewEPG("IT", "Nml", "IT"))
	g2.AddEPG(policy.NewEPG("DB", "Nml", "DB"))
	g2.AddEdge(janus.Edge{Src: "IT", Dst: "DB", QoS: janus.QoS{BandwidthMbps: 30}})

	composed, err := compose.New(nil).Compose(g1, g2)
	check(err)
	conf, err := core.New(tp, composed, core.Config{CandidatePaths: 5, Seed: 42})
	check(err)

	rt, err := runtime.New(context.Background(), conf)
	check(err)
	fmt.Printf("initial: %d/%d policies configured, %d rules installed\n",
		rt.Current().SatisfiedCount(), len(rt.Current().Configured), rt.Network().RuleCount())
	if problems := rt.Verify(); len(problems) > 0 {
		fmt.Println("verification problems:", problems)
	} else {
		fmt.Println("dataplane verification: every flow reaches its destination through its chain")
	}

	// Stateful escalation: five failed connections trip the >=5 condition
	// and the flow moves onto its pre-reserved escalation path.
	for i := 0; i < 5; i++ {
		check(rt.ReportEvent(context.Background(), "m1", "w1", janus.FailedConnections, 1))
	}
	fmt.Printf("after IDS alarm: %d stateful reroutes, %d path changes total\n",
		rt.Metrics().StatefulReroutes, rt.Metrics().PathChanges)

	// Mobility: the marketing user docks at the s6 wing.
	check(rt.MoveEndpoint(context.Background(), "m1", s["s6"]))
	fmt.Printf("after mobility: %d reconfigurations, %d path changes, satisfied %d\n",
		rt.Metrics().Reconfigurations, rt.Metrics().PathChanges,
		rt.Current().SatisfiedCount())

	// Graph churn (Fig 5): IT->DB now must pass the byte counter.
	g2b := janus.NewPolicyGraph("policy3")
	g2b.AddEPG(policy.NewEPG("IT", "Nml", "IT"))
	g2b.AddEPG(policy.NewEPG("DB", "Nml", "DB"))
	g2b.AddEdge(janus.Edge{Src: "IT", Dst: "DB",
		Chain: janus.Chain{janus.ByteCounter},
		QoS:   janus.QoS{BandwidthMbps: 30}})
	composed2, err := compose.New(nil).Compose(g1, g2b)
	check(err)
	check(rt.UpdateGraph(context.Background(), composed2, core.Config{CandidatePaths: 5, Seed: 42}))
	fmt.Printf("after policy change: satisfied %d, cumulative path changes %d, NF state transfers %d\n",
		rt.Current().SatisfiedCount(), rt.Metrics().PathChanges, rt.Metrics().NFStateTransfers)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
