// Priority scenario (§7.5 of the paper): policy weights translate directly
// into priorities under contention — when the network saturates, low-weight
// policies are rejected first, then medium, and high-weight policies last.
package main

import (
	"fmt"
	"log"
	"sort"

	"janus"
	"janus/internal/core"
	"janus/internal/workload"
)

func main() {
	// A congested workload on the Ans topology: 30 policies split evenly
	// across priority classes with weights 8/4/2 (the paper's classes).
	w, err := workload.Generate("Ans", workload.Spec{
		Policies:           30,
		EndpointsPerPolicy: 2,
		Seed:               11,
		PriorityClasses:    []float64{8, 4, 2},
	})
	check(err)

	conf, err := core.New(w.Topo, w.Graph, core.Config{CandidatePaths: 5, Seed: 11})
	check(err)
	res, err := conf.Configure(0)
	check(err)

	unconfigured := map[float64][]int{}
	for _, p := range w.Graph.Policies {
		if !res.Configured[p.ID] {
			unconfigured[p.Weight] = append(unconfigured[p.Weight], p.ID)
		}
	}
	fmt.Printf("configured %d/%d policies under contention\n",
		res.SatisfiedCount(), len(w.Graph.Policies))
	for _, class := range []struct {
		w    float64
		name string
	}{{8, "high"}, {4, "med"}, {2, "low"}} {
		ids := unconfigured[class.w]
		sort.Ints(ids)
		fmt.Printf("  %-4s (weight %.0f): %d unconfigured %v\n",
			class.name, class.w, len(ids), ids)
	}
	if len(unconfigured[2]) < len(unconfigured[8]) {
		fmt.Println("unexpected: low class fared better than high — try another seed")
	} else {
		fmt.Println("weights acted as priorities: rejections concentrate in the low class")
	}

	// Show the bottlenecks the high-priority traffic is squeezing through.
	if bn := res.Bottlenecks(); len(bn) > 0 {
		fmt.Println("most contended links (by LP shadow price):")
		for i, l := range bn {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d->%d: %.0f/%.0f Mbps, shadow price %.4f\n",
				l.From, l.To, l.Reserved, l.Capacity, l.ShadowPrice)
		}
	}
	_ = janus.Config{}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
