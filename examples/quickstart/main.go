// Quickstart: express one QoS policy, compose it, configure it on a tiny
// topology, and print the chosen paths — the minimal end-to-end Janus flow.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	// 1. Build a small network: two switches joined directly and through a
	//    load balancer, one marketing laptop and one web server.
	tp := janus.NewTopology("quickstart")
	s1 := tp.AddSwitch("s1")
	s2 := tp.AddSwitch("s2")
	lb := tp.AddNF("lb1", janus.LoadBalance)
	check(tp.AddLink(s1, s2, 100))  // direct 100 Mbps
	check(tp.AddLink(s1, lb, 1000)) // via the load balancer
	check(tp.AddLink(lb, s2, 1000)) //
	check(tp.AddEndpoint("m1", s1, "Marketing"))
	check(tp.AddEndpoint("w1", s2, "Web"))

	// 2. Write the Fig 1(a) intent: Marketing may reach Web on tcp/80
	//    through a load balancer with at least 100 Mbps.
	g := janus.NewPolicyGraph("web-qos")
	g.AddEdge(janus.Edge{
		Src: "Marketing", Dst: "Web",
		Match: janus.Classifier{Proto: janus.TCP, Ports: []int{80}},
		Chain: janus.Chain{janus.LoadBalance},
		QoS:   janus.QoS{BandwidthMbps: 100},
	})

	// 3. Compose (a single graph here; multiple writers compose the same
	//    way) and configure.
	composed, err := janus.Compose(nil, g)
	check(err)
	conf, err := janus.NewConfigurator(tp, composed, janus.Config{CandidatePaths: 5})
	check(err)
	res, err := conf.Configure(0)
	check(err)

	// 4. Inspect the result.
	fmt.Printf("configured %d/%d policies\n", res.SatisfiedCount(), len(res.Configured))
	for _, a := range res.Assignments {
		fmt.Printf("  %s -> %s rides path %s with %.0f Mbps reserved\n",
			a.Src, a.Dst, a.Path.Key(), a.BW)
	}
	for _, l := range res.Links {
		if l.Reserved > 0 {
			fmt.Printf("  link %d->%d: %.0f/%.0f Mbps reserved\n",
				l.From, l.To, l.Reserved, l.Capacity)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
