// QoS verification: configure bandwidth policies, install them into the
// simulated dataplane, then offer MORE traffic than the network can carry
// and verify with the flow-level simulator that every configured policy
// still receives its guaranteed bandwidth while best-effort traffic shares
// the leftovers max-min fairly — the end-to-end property behind the
// paper's queue-based QoS enforcement (§6).
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/topo"
	"janus/internal/traffic"
)

func main() {
	// A 200 Mbps backbone between two sites.
	tp := topo.NewTopology("qosverify")
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	check(tp.AddLink(a, b, 200))
	check(tp.AddEndpoint("video", a, "Video"))
	check(tp.AddEndpoint("voip", a, "VoIP"))
	check(tp.AddEndpoint("backup", a, "Backup"))
	check(tp.AddEndpoint("web", a, "WebUsers"))
	check(tp.AddEndpoint("dc", b, "DC"))

	// Two guaranteed policies and two best-effort ones.
	graphs := []*janus.PolicyGraph{
		graph("video-qos", "Video", janus.QoS{BandwidthMbps: 90}),
		graph("voip-qos", "VoIP", janus.QoS{BandwidthMbps: 30}),
		graph("backup", "Backup", janus.QoS{}),
		graph("web", "WebUsers", janus.QoS{}),
	}
	cg, err := compose.New(nil).Compose(graphs...)
	check(err)
	conf, err := core.New(tp, cg, core.Config{})
	check(err)
	res, err := conf.Configure(0)
	check(err)
	fmt.Printf("configured %d/%d policies\n", res.SatisfiedCount(), len(res.Configured))

	net := dataplane.NewNetwork(tp)
	_, err = net.Apply(dataplane.CompileRules(tp, dataplane.NewGraphAdapter(cg), res), res.Assignments)
	check(err)

	// Offer 400 Mbps onto the 200 Mbps link.
	sim, err := traffic.Simulate(tp, net, []traffic.Flow{
		{Src: "video", Dst: "dc", Proto: policy.TCP, Port: 80, DemandMbps: 120},
		{Src: "voip", Dst: "dc", Proto: policy.TCP, Port: 80, DemandMbps: 30},
		{Src: "backup", Dst: "dc", Proto: policy.TCP, Port: 80, DemandMbps: 150},
		{Src: "web", Dst: "dc", Proto: policy.TCP, Port: 80, DemandMbps: 100},
	})
	check(err)

	fmt.Println("offered 400 Mbps onto a 200 Mbps link:")
	for _, al := range sim.Allocations {
		kind := "best-effort"
		if al.ReservedMbps > 0 {
			kind = fmt.Sprintf("guaranteed %.0f Mbps", al.ReservedMbps)
		}
		fmt.Printf("  %-7s demand %.0f -> rate %6.1f Mbps  (%s)\n",
			al.Flow.Src, al.Flow.DemandMbps, al.RateMbps, kind)
	}
	if v := sim.GuaranteeViolations(); len(v) == 0 {
		fmt.Println("all bandwidth guarantees held under 2x overload")
	} else {
		fmt.Printf("GUARANTEE VIOLATIONS: %+v\n", v)
	}
	for _, l := range sim.Links {
		fmt.Printf("  link %d->%d carried %.1f/%.1f Mbps\n", l.From, l.To, l.Carried, l.Capacity)
	}
}

func graph(name, src string, qos janus.QoS) *janus.PolicyGraph {
	g := janus.NewPolicyGraph(name)
	g.AddEdge(janus.Edge{Src: src, Dst: "DC", QoS: qos})
	return g
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
