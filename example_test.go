package janus_test

import (
	"fmt"
	"log"

	"janus"
)

// ExampleCompose shows QoS label composition (§4.1, Fig 8a): two writers
// constrain the same pair, and the composed edge takes the better label
// and the concatenated service chain.
func ExampleCompose() {
	a := janus.NewPolicyGraph("writerA")
	a.AddEdge(janus.Edge{Src: "SkypeClient", Dst: "Server",
		Chain: janus.Chain{janus.Firewall},
		QoS:   janus.QoS{MinBandwidth: "medium"}})
	b := janus.NewPolicyGraph("writerB")
	b.AddEdge(janus.Edge{Src: "SkypeClient", Dst: "Server",
		Chain: janus.Chain{janus.LoadBalance},
		QoS:   janus.QoS{MinBandwidth: "low"}})

	composed, err := janus.Compose(nil, a, b)
	if err != nil {
		log.Fatal(err)
	}
	p := composed.Policies[0]
	fmt.Println("chain:", p.Default.Chain)
	fmt.Println("min b/w:", p.Default.QoS.MinBandwidth)
	// Output:
	// chain: FW->LB
	// min b/w: medium
}

// ExampleConfigurator_Configure walks the minimal intent-to-paths flow on
// a two-switch network with a load balancer.
func ExampleConfigurator_Configure() {
	tp := janus.NewTopology("demo")
	s1 := tp.AddSwitch("s1")
	s2 := tp.AddSwitch("s2")
	lb := tp.AddNF("lb1", janus.LoadBalance)
	for _, l := range [][2]janus.NodeID{{s1, s2}, {s1, lb}, {lb, s2}} {
		if err := tp.AddLink(l[0], l[1], 1000); err != nil {
			log.Fatal(err)
		}
	}
	if err := tp.AddEndpoint("m1", s1, "Marketing"); err != nil {
		log.Fatal(err)
	}
	if err := tp.AddEndpoint("w1", s2, "Web"); err != nil {
		log.Fatal(err)
	}

	g := janus.NewPolicyGraph("web-qos")
	g.AddEdge(janus.Edge{Src: "Marketing", Dst: "Web",
		Chain: janus.Chain{janus.LoadBalance},
		QoS:   janus.QoS{BandwidthMbps: 100}})
	composed, err := janus.Compose(nil, g)
	if err != nil {
		log.Fatal(err)
	}
	conf, err := janus.NewConfigurator(tp, composed, janus.Config{CandidatePaths: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured %d/%d\n", res.SatisfiedCount(), len(res.Configured))
	for _, a := range res.Assignments {
		fmt.Printf("%s->%s via %s\n", a.Src, a.Dst, a.Path.Key())
	}
	// Output:
	// configured 1/1
	// m1->w1 via 0-2-1
}
