// Package janus is the public API of the Janus reproduction: a system for
// expressing, composing, and configuring diverse dynamic intent-based
// network policies (Abhashkumar et al., CoNEXT 2017).
//
// Janus extends graph-based policy intents (PGA) with QoS requirements
// (bandwidth, latency, jitter — expressed as logical labels) and dynamic
// conditions (stateful escalations and time-of-day windows), composes
// policy graphs from multiple writers, and configures the composed graph
// onto a topology by maximizing the number of atomically-satisfied group
// policies while minimizing path changes under churn.
//
// Basic use:
//
//	g := janus.NewPolicyGraph("web-qos")
//	g.AddEdge(janus.Edge{
//		Src: "Marketing", Dst: "Web",
//		Match: janus.Classifier{Proto: janus.TCP, Ports: []int{80}},
//		Chain: janus.Chain{janus.LoadBalance},
//		QoS:   janus.QoS{BandwidthMbps: 100},
//	})
//	composed, _ := janus.Compose(nil, g)
//	conf, _ := janus.NewConfigurator(topology, composed, janus.Config{CandidatePaths: 5})
//	result, _ := conf.Configure(0)
//
// The heavy lifting lives in the internal packages (documented in
// DESIGN.md); this package re-exports the stable surface.
package janus

import (
	"janus/internal/compose"
	"janus/internal/core"
	"janus/internal/labels"
	"janus/internal/policy"
	"janus/internal/topo"
)

// Re-exported policy-model types (§4 of the paper).
type (
	// PolicyGraph is one writer's input policy graph.
	PolicyGraph = policy.Graph
	// Edge is a directed policy edge between two EPGs.
	Edge = policy.Edge
	// EPG is an endpoint group.
	EPG = policy.EPG
	// Classifier selects traffic (proto/ports).
	Classifier = policy.Classifier
	// Chain is an ordered NF service chain (waypoints).
	Chain = policy.Chain
	// QoS carries label-graded QoS requirements.
	QoS = policy.QoS
	// Condition is a dynamic (stateful and/or temporal) edge condition.
	Condition = policy.Condition
	// StatefulCond is a conjunction of event-counter predicates.
	StatefulCond = policy.StatefulCond
	// TimeWindow is a daily [start,end) hour window.
	TimeWindow = policy.TimeWindow
	// Event names a counter driving stateful policies.
	Event = policy.Event
	// Protocol is a classifier protocol.
	Protocol = policy.Protocol
	// NFKind names a middlebox type.
	NFKind = policy.NFKind
)

// Re-exported protocol and NF constants.
const (
	TCP = policy.TCP
	UDP = policy.UDP
	Any = policy.Any

	Firewall    = policy.Firewall
	StatefulFW  = policy.StatefulFW
	LoadBalance = policy.LoadBalance
	LightIDS    = policy.LightIDS
	HeavyIDS    = policy.HeavyIDS
	ByteCounter = policy.ByteCounter
	DPI         = policy.DPI

	FailedConnections = policy.FailedConnections
	BadSignature      = policy.BadSignature
)

// Re-exported label-scheme types (§4.1).
type (
	// LabelScheme orders QoS labels and maps them to concrete values.
	LabelScheme = labels.Scheme
	// Label is a logical QoS level.
	Label = labels.Label
)

// DefaultLabels returns the paper's example label scheme (low/medium/high
// bandwidth, etc.).
func DefaultLabels() *LabelScheme { return labels.Default() }

// Re-exported topology types (§5.1).
type (
	// Topology is the target network.
	Topology = topo.Topology
	// NodeID identifies a topology node.
	NodeID = topo.NodeID
	// Endpoint is a host attached to a switch.
	Endpoint = topo.Endpoint
)

// NewTopology returns an empty topology.
func NewTopology(name string) *Topology { return topo.NewTopology(name) }

// ZooTopology builds one of the named evaluation topologies (Ans, Agis,
// CrlNetServ, Cwix, Garr201008, Internode, Redbestel).
func ZooTopology(name string) (*Topology, error) { return topo.Zoo(name) }

// Re-exported composition types (§4).
type (
	// ComposedGraph is the merged policy graph of all writers.
	ComposedGraph = compose.Graph
	// ComposedPolicy is one configurable (src,dst) group policy.
	ComposedPolicy = compose.Policy
	// Conflict records a composition conflict.
	Conflict = compose.Conflict
)

// NewPolicyGraph returns an empty input policy graph.
func NewPolicyGraph(name string) *PolicyGraph { return policy.NewGraph(name) }

// Compose merges input policy graphs under a label scheme (nil for the
// default scheme), resolving QoS label conflicts and dynamic-condition
// conjunctions, and pruning unsatisfiable edges.
func Compose(scheme *LabelScheme, graphs ...*PolicyGraph) (*ComposedGraph, error) {
	return compose.New(scheme).Compose(graphs...)
}

// Re-exported configurator types (§5).
type (
	// Config tunes the policy configurator.
	Config = core.Config
	// Configurator solves policy configurations on a topology.
	Configurator = core.Configurator
	// Result is one period's configuration.
	Result = core.Result
	// TemporalResult is a per-period chain of configurations.
	TemporalResult = core.TemporalResult
	// NegotiationResult reports a §5.6 bandwidth negotiation.
	NegotiationResult = core.NegotiationResult
	// Assignment is one configured (policy, pair) path.
	Assignment = core.Assignment
	// LinkUse reports per-link reservation and shadow price.
	LinkUse = core.LinkUse
)

// NewConfigurator binds a composed graph to a topology.
func NewConfigurator(t *Topology, g *ComposedGraph, cfg Config) (*Configurator, error) {
	return core.New(t, g, cfg)
}

// CountPathChanges counts the path-change disruption between two results
// (the Σα metric of Eqns 7–8).
func CountPathChanges(prev, next *Result) int { return core.CountPathChanges(prev, next) }
