// Command januslint runs Janus's project-specific static-analysis suite
// (internal/analysis) over package patterns, ./... by default.
//
//	go run ./cmd/januslint ./...
//
// The default suite registers fourteen analyzers: the syntactic checks
// floatcmp, detrand, lockcheck, and errdrop; the CFG/dataflow-backed
// mutexcopy, ctxleak, and deferloop (built on internal/analysis/cfg); the
// SSA-backed nilness and deadstore (built on internal/analysis/ssa);
// layercheck, which enforces the import DAG declared in
// internal/analysis/layers.json; the interprocedural lockorder, hotalloc,
// and ctxleakip, which share one whole-program call graph
// (internal/analysis/callgraph) spanning every loaded package; and
// staleallow, which audits the suppression comments themselves.
//
// It understands plain directories and the /... recursive suffix, prints
// file:line:col: [check] message findings (or a JSON array with -json, or
// a SARIF 2.1.0 log with -sarif for CI code-scanning upload), and exits 1
// when any finding survives suppression, 2 on load errors. Findings are
// suppressed with //janus:allow(check): reason on the offending line or
// the line above; see internal/analysis.
//
// With -cache DIR the run keeps an on-disk diagnostic cache keyed by
// content hashes: a warm run over an unchanged tree replays its findings
// without parsing or type-checking anything, and a partial run re-analyzes
// only the packages whose sources or module-local dependencies changed.
// -require-warm (for CI) exits 3 unless the run was a full cache hit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"janus/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	cacheDir := flag.String("cache", "", "directory holding the incremental diagnostic cache")
	requireWarm := flag.Bool("require-warm", false, "with -cache: fail unless the run was a full cache hit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: januslint [-json|-sarif] [-cache dir [-require-warm]] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.Default()
	var diags []analysis.Diagnostic
	var modRoot string

	if *cacheDir != "" {
		// Cache mode analyzes one recursive tree: that is the shape whose
		// fingerprint the cache keys (and the only shape CI runs).
		if len(patterns) != 1 || !strings.HasSuffix(patterns[0], "/...") {
			fatal(fmt.Errorf("-cache requires a single recursive pattern like ./..."))
		}
		root := strings.TrimSuffix(patterns[0], "/...")
		if root == "" {
			root = "."
		}
		res, err := analysis.RunAllCached(root, *cacheDir, analyzers)
		if err != nil {
			fatal(err)
		}
		if *requireWarm && !res.FullHit {
			fmt.Fprintf(os.Stderr, "januslint: cache in %s was not warm (%d packages re-analyzed)\n", *cacheDir, res.Analyzed)
			os.Exit(3)
		}
		diags = res.Diags
		if modRoot == "" {
			if l, err := analysis.NewLoader("."); err == nil {
				modRoot = l.ModuleRoot()
			}
		}
	} else {
		loader, err := analysis.NewLoader(".")
		if err != nil {
			fatal(err)
		}
		modRoot = loader.ModuleRoot()
		var pkgs []*analysis.Package
		seen := map[string]bool{}
		for _, pat := range patterns {
			var batch []*analysis.Package
			if root, ok := strings.CutSuffix(pat, "/..."); ok {
				if root == "" || root == "." {
					root = "."
				}
				batch, err = loader.LoadTree(root)
			} else {
				var p *analysis.Package
				p, err = loader.LoadDir(pat)
				batch = []*analysis.Package{p}
			}
			if err != nil {
				fatal(err)
			}
			for _, p := range batch {
				if !seen[p.Path] {
					seen[p.Path] = true
					pkgs = append(pkgs, p)
				}
			}
		}
		diags = analysis.RunAll(pkgs, analyzers)
	}

	switch {
	case *sarifOut:
		log, err := analysis.SARIF(analyzers, diags, modRoot)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(append(log, '\n')); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
					d.File = rel
				}
			}
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "januslint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "januslint:", err)
	os.Exit(2)
}
