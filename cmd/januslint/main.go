// Command januslint runs Janus's project-specific static-analysis suite
// (internal/analysis) over package patterns, ./... by default.
//
//	go run ./cmd/januslint ./...
//
// The default suite registers eleven analyzers: the syntactic checks
// floatcmp, detrand, lockcheck, and errdrop; the CFG/dataflow-backed
// mutexcopy, ctxleak, and deferloop (built on internal/analysis/cfg);
// layercheck, which enforces the import DAG declared in
// internal/analysis/layers.json; and the interprocedural lockorder,
// hotalloc, and ctxleakip, which share one whole-program call graph
// (internal/analysis/callgraph) spanning every loaded package.
//
// It understands plain directories and the /... recursive suffix, prints
// file:line:col: [check] message findings (or a JSON array with -json, or
// a SARIF 2.1.0 log with -sarif for CI code-scanning upload), and exits 1
// when any finding survives suppression, 2 on load errors. Findings are
// suppressed with //janus:allow <check> <reason> on the offending line or
// the line above; see internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"janus/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: januslint [-json|-sarif] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		var batch []*analysis.Package
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			batch, err = loader.LoadTree(root)
		} else {
			var p *analysis.Package
			p, err = loader.LoadDir(pat)
			batch = []*analysis.Package{p}
		}
		if err != nil {
			fatal(err)
		}
		for _, p := range batch {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	analyzers := analysis.Default()
	diags := analysis.RunAll(pkgs, analyzers)

	switch {
	case *sarifOut:
		log, err := analysis.SARIF(analyzers, diags, loader.ModuleRoot())
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(append(log, '\n')); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.File); err == nil && !strings.HasPrefix(rel, "..") {
					d.File = rel
				}
			}
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "januslint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "januslint:", err)
	os.Exit(2)
}
