// Command janusbench regenerates the tables and figures of the Janus
// paper's evaluation (§7) and prints them as text tables.
//
// Usage:
//
//	janusbench                     # run every experiment at default scale
//	janusbench -exp fig11          # one experiment
//	janusbench -scale 2 -runs 3    # larger sweeps, averaged over 3 seeds
//	janusbench -list               # list experiments
//	janusbench -json BENCH.json    # parallel-solver benchmark as JSON
//	                               # (compared by cmd/benchdiff in CI)
//
// See EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (empty = all)")
	scale := flag.Float64("scale", 1, "size multiplier for policy counts")
	runs := flag.Int("runs", 1, "seeds to average over (paper: 10)")
	seed := flag.Int64("seed", 1, "base random seed")
	limit := flag.Duration("timelimit", 60*time.Second, "per-solve time limit")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "write the parallel-solver benchmark to this JSON file and exit")
	workers := flag.Int("workers", 4, "parallel worker count for -json")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	params := experiments.Params{Scale: *scale, Seed: *seed, Runs: *runs, TimeLimit: *limit}

	if *jsonOut != "" {
		b, err := experiments.RunParallelBench(params, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: parbench: %v\n", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(b.Render())
		return
	}
	todo := experiments.All
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "janusbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.Name, e.Description)
		tables, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
