// Command janusbench regenerates the tables and figures of the Janus
// paper's evaluation (§7) and prints them as text tables.
//
// Usage:
//
//	janusbench                     # run every experiment at default scale
//	janusbench -exp fig11          # one experiment
//	janusbench -scale 2 -runs 3    # larger sweeps, averaged over 3 seeds
//	janusbench -list               # list experiments
//	janusbench -json BENCH.json    # parallel-solver benchmark as JSON
//	                               # (compared by cmd/benchdiff in CI)
//	janusbench -cpuprofile cpu.pprof -exp fig11   # profile a run
//
// See EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"janus/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run carries the real main so profile-stopping defers execute before the
// process exits.
func run() int {
	exp := flag.String("exp", "", "experiment to run (empty = all)")
	scale := flag.Float64("scale", 1, "size multiplier for policy counts")
	runs := flag.Int("runs", 1, "seeds to average over (paper: 10)")
	seed := flag.Int64("seed", 1, "base random seed")
	limit := flag.Duration("timelimit", 60*time.Second, "per-solve time limit")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.String("json", "", "write the parallel-solver benchmark to this JSON file and exit")
	workers := flag.Int("workers", 4, "parallel worker count for -json")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close() // best-effort: the profile is already flushed
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "janusbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accurate allocation stats into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "janusbench: memprofile: %v\n", err)
			}
		}()
	}

	params := experiments.Params{Scale: *scale, Seed: *seed, Runs: *runs, TimeLimit: *limit}

	if *jsonOut != "" {
		b, err := experiments.RunParallelBench(params, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: parbench: %v\n", err)
			return 1
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
			return 1
		}
		fmt.Println(b.Render())
		return 0
	}
	todo := experiments.All
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "janusbench: unknown experiment %q (use -list)\n", *exp)
			return 1
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("== %s: %s ==\n", e.Name, e.Description)
		tables, err := e.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", e.Name, err)
			return 1
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
