// Command janusd runs the Janus controller as an HTTP service (the Fig 7
// deployment: intents in from policy writers, dataplane state out to the
// control platform).
//
// Usage:
//
//	janusd -topo topology.json [-addr :8080] [-paths 5] [-seed 1] [-tick 0]
//	       [-data-dir /var/lib/janusd] [-snapshot-every 64]
//
// With -tick set (e.g. -tick 1m), the controller advances the policy clock
// one hour per interval on its own, driving time-of-day policies without an
// external scheduler. SIGINT/SIGTERM shut the server down gracefully:
// in-flight requests finish and the ticker goroutine is reaped before exit.
//
// With -data-dir set, runtime state is durable: every northbound mutation
// is journaled (write + fsync) before it is acknowledged, a snapshot is
// taken every -snapshot-every appends and on graceful shutdown, and boot
// recovers the journaled state — replaying the log suffix past the newest
// snapshot and truncating at the first torn record — so a restarted
// controller resumes with its composed graph, escalations, quarantines,
// and remembered link capacities intact.
//
// Then, for example:
//
//	curl -X PUT  localhost:8080/graphs/web -H 'Content-Type: text/plain' \
//	     --data-binary @web.policy
//	curl -X POST localhost:8080/configure
//	curl         localhost:8080/config
//	curl -X POST localhost:8080/events/move \
//	     -d '{"endpoint":"m1","to":3}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"janus/internal/core"
	"janus/internal/server"
	"janus/internal/store"
	"janus/internal/topo"
)

func main() {
	topoPath := flag.String("topo", "", "topology JSON file (required)")
	addr := flag.String("addr", ":8080", "listen address")
	paths := flag.Int("paths", 5, "candidate paths per endpoint pair")
	seed := flag.Int64("seed", 1, "random seed")
	tick := flag.Duration("tick", 0, "advance the policy clock one hour per interval (0 disables)")
	dataDir := flag.String("data-dir", "", "directory for durable state (empty disables persistence)")
	snapEvery := flag.Int("snapshot-every", 64, "snapshot after this many journal appends (with -data-dir)")
	flag.Parse()

	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "janusd: -topo is required")
		os.Exit(1)
	}
	data, err := os.ReadFile(*topoPath)
	if err != nil {
		log.Fatalf("janusd: %v", err)
	}
	var t topo.Topology
	if err := json.Unmarshal(data, &t); err != nil {
		log.Fatalf("janusd: decoding topology: %v", err)
	}
	s, err := server.New(&t, core.Config{CandidatePaths: *paths, Seed: *seed})
	if err != nil {
		log.Fatalf("janusd: %v", err)
	}
	if *dataDir != "" {
		st, err := store.Open(store.OSFS(), *dataDir, store.Options{SnapshotEvery: *snapEvery})
		if err != nil {
			log.Fatalf("janusd: opening data dir: %v", err)
		}
		if err := s.AttachStore(st); err != nil {
			log.Fatalf("janusd: %v", err)
		}
		info := st.RecoveryInfo()
		log.Printf("janusd: durable state in %s: generation %d, %d records replayed (last seq %d) in %v",
			*dataDir, info.Generation, info.ReplayedRecords, info.LastSeq, info.Duration)
		if info.TornTail {
			log.Printf("janusd: journal tail was torn; truncated at last valid record")
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tickerDone <-chan struct{}
	if *tick > 0 {
		tickerDone, err = s.StartAutoHour(ctx, *tick, log.Printf)
		if err != nil {
			log.Fatalf("janusd: %v", err)
		}
		log.Printf("janusd: auto-hour ticker on, one policy hour per %v", *tick)
	} else {
		closed := make(chan struct{})
		close(closed)
		tickerDone = closed
	}

	srv := &http.Server{Addr: *addr, Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("janusd: serving topology %q (%d nodes) on %s", t.Name, len(t.Nodes), *addr)

	select {
	case err := <-serveErr:
		log.Fatalf("janusd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("janusd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("janusd: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("janusd: serve: %v", err)
	}
	<-tickerDone
	if err := s.Checkpoint(); err != nil {
		log.Printf("janusd: %v", err)
	} else if *dataDir != "" {
		log.Printf("janusd: shutdown snapshot written; next boot replays zero records")
	}
	log.Printf("janusd: stopped")
}
