// Command janusd runs the Janus controller as an HTTP service (the Fig 7
// deployment: intents in from policy writers, dataplane state out to the
// control platform).
//
// Usage:
//
//	janusd -topo topology.json [-addr :8080] [-paths 5] [-seed 1]
//
// Then, for example:
//
//	curl -X PUT  localhost:8080/graphs/web -H 'Content-Type: text/plain' \
//	     --data-binary @web.policy
//	curl -X POST localhost:8080/configure
//	curl         localhost:8080/config
//	curl -X POST localhost:8080/events/move \
//	     -d '{"endpoint":"m1","to":3}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"janus/internal/core"
	"janus/internal/server"
	"janus/internal/topo"
)

func main() {
	topoPath := flag.String("topo", "", "topology JSON file (required)")
	addr := flag.String("addr", ":8080", "listen address")
	paths := flag.Int("paths", 5, "candidate paths per endpoint pair")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "janusd: -topo is required")
		os.Exit(1)
	}
	data, err := os.ReadFile(*topoPath)
	if err != nil {
		log.Fatalf("janusd: %v", err)
	}
	var t topo.Topology
	if err := json.Unmarshal(data, &t); err != nil {
		log.Fatalf("janusd: decoding topology: %v", err)
	}
	s, err := server.New(&t, core.Config{CandidatePaths: *paths, Seed: *seed})
	if err != nil {
		log.Fatalf("janusd: %v", err)
	}
	log.Printf("janusd: serving topology %q (%d nodes) on %s", t.Name, len(t.Nodes), *addr)
	log.Fatal(http.ListenAndServe(*addr, s))
}
