// Command benchdiff compares a fresh janusbench -json run against the
// committed BENCH.json baseline and fails (exit 1) on a performance
// regression.
//
// Usage:
//
//	janusbench -json BENCH.new.json
//	benchdiff -baseline BENCH.json -candidate BENCH.new.json
//
// A regression is a per-topology solve time more than -threshold (default
// 20%) slower than baseline AND slower by more than -floor (default 250ms)
// in absolute terms — the floor keeps sub-second timing jitter on loaded CI
// machines from failing the gate. Speedup ratios are reported but not
// gated: they depend on the host's core count, which CI does not pin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/experiments"
)

func load(path string) (*experiments.Bench, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b experiments.Bench
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH.json", "committed baseline")
	candidatePath := flag.String("candidate", "", "fresh janusbench -json output")
	threshold := flag.Float64("threshold", 0.20, "relative slowdown that counts as a regression")
	floor := flag.Duration("floor", 250*time.Millisecond, "absolute slowdown below which jitter is ignored")
	flag.Parse()

	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	baseBy := map[string]experiments.BenchEntry{}
	for _, e := range base.Entries {
		baseBy[e.Topology] = e
	}

	regressions := 0
	for _, c := range cand.Entries {
		b, ok := baseBy[c.Topology]
		if !ok {
			fmt.Printf("%-12s new topology (no baseline), serial %.3fs parallel %.3fs\n",
				c.Topology, c.SerialSeconds, c.ParallelSeconds)
			continue
		}
		check := func(kind string, baseSec, candSec float64) {
			delta := candSec - baseSec
			rel := 0.0
			if baseSec > 0 {
				rel = delta / baseSec
			}
			mark := "ok"
			if rel > *threshold && delta > floor.Seconds() {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-12s %-8s base %8.3fs  now %8.3fs  (%+.1f%%)  %s\n",
				c.Topology, kind, baseSec, candSec, 100*rel, mark)
		}
		check("serial", b.SerialSeconds, c.SerialSeconds)
		check("parallel", b.ParallelSeconds, c.ParallelSeconds)
		fmt.Printf("%-12s speedup  base %8.2fx  now %8.2fx  (informational)\n",
			c.Topology, b.Speedup, c.Speedup)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%% + %s\n",
			regressions, *threshold*100, *floor)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
