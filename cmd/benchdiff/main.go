// Command benchdiff compares a fresh janusbench -json run against the
// committed BENCH.json baseline and fails (exit 1) on a performance
// regression.
//
// Usage:
//
//	janusbench -json BENCH.new.json
//	benchdiff -baseline BENCH.json -candidate BENCH.new.json
//
// A regression is a per-topology solve time more than -threshold (default
// 20%) slower than baseline AND slower by more than -floor (default 250ms)
// in absolute terms — the floor keeps sub-second timing jitter on loaded CI
// machines from failing the gate. Speedup ratios are reported but not
// gated: they depend on the host's core count, which CI does not pin.
//
// Schema v2 baselines additionally carry an lp_micro section (simplex-level
// cold/warm latency and warm allocations per solve); those are gated with
// the same relative threshold and a -microfloor absolute floor. Baselines
// may also carry a fastpath section (compiled flow-classification latency,
// gated with -fastfloor, plus a hard zero-allocation check) and a delta
// section (incremental-reconfiguration event cost, gated against its
// baseline latency and against the -deltamin absolute speedup floor on the
// fig11 Cwix entries). Baselines missing a section simply skip its gate,
// but the -deltamin floor applies to any candidate that carries the
// section — a hard property of the delta layer, not a host comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/experiments"
)

func load(path string) (*experiments.Bench, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b experiments.Bench
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH.json", "committed baseline")
	candidatePath := flag.String("candidate", "", "fresh janusbench -json output")
	threshold := flag.Float64("threshold", 0.20, "relative slowdown that counts as a regression")
	floor := flag.Duration("floor", 250*time.Millisecond, "absolute slowdown below which jitter is ignored")
	microFloor := flag.Duration("microfloor", 250*time.Microsecond, "absolute lp_micro slowdown below which jitter is ignored")
	fastFloor := flag.Duration("fastfloor", 50*time.Nanosecond, "absolute compiled-lookup slowdown below which jitter is ignored")
	deltaFloor := flag.Duration("deltafloor", 25*time.Millisecond, "absolute delta-solve slowdown below which jitter is ignored")
	deltaMin := flag.Float64("deltamin", 5.0, "minimum full/delta speedup required of Cwix delta entries")
	flag.Parse()

	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	baseBy := map[string]experiments.BenchEntry{}
	for _, e := range base.Entries {
		baseBy[e.Topology] = e
	}

	regressions := 0
	for _, c := range cand.Entries {
		b, ok := baseBy[c.Topology]
		if !ok {
			fmt.Printf("%-12s new topology (no baseline), serial %.3fs parallel %.3fs\n",
				c.Topology, c.SerialSeconds, c.ParallelSeconds)
			continue
		}
		check := func(kind string, baseSec, candSec float64) {
			delta := candSec - baseSec
			rel := 0.0
			if baseSec > 0 {
				rel = delta / baseSec
			}
			mark := "ok"
			if rel > *threshold && delta > floor.Seconds() {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-12s %-8s base %8.3fs  now %8.3fs  (%+.1f%%)  %s\n",
				c.Topology, kind, baseSec, candSec, 100*rel, mark)
		}
		check("serial", b.SerialSeconds, c.SerialSeconds)
		check("parallel", b.ParallelSeconds, c.ParallelSeconds)
		fmt.Printf("%-12s speedup  base %8.2fx  now %8.2fx  (informational)\n",
			c.Topology, b.Speedup, c.Speedup)
	}
	// LP microbenchmark gate: only when the baseline has the v2 section —
	// an old baseline (schema_version < 2 or missing lp_micro) skips it,
	// so the gate phases in on the first re-record.
	switch {
	case base.LPMicro == nil:
		fmt.Println("lp_micro      baseline predates schema v2; gate skipped")
	case cand.LPMicro == nil:
		fmt.Println("lp_micro      candidate has no lp_micro section; gate skipped")
	default:
		mcheck := func(kind string, baseMic, candMic float64) {
			delta := candMic - baseMic
			rel := 0.0
			if baseMic > 0 {
				rel = delta / baseMic
			}
			mark := "ok"
			if rel > *threshold && delta > float64(microFloor.Microseconds()) {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-12s %-8s base %7.1fµs  now %7.1fµs  (%+.1f%%)  %s\n",
				"lp_micro", kind, baseMic, candMic, 100*rel, mark)
		}
		mcheck("cold", base.LPMicro.ColdMicros, cand.LPMicro.ColdMicros)
		mcheck("warm", base.LPMicro.WarmMicros, cand.LPMicro.WarmMicros)
		// Allocations are deterministic, so any growth beyond the relative
		// threshold is a real regression — no absolute floor needed.
		ba, ca := base.LPMicro.WarmAllocsPerSolve, cand.LPMicro.WarmAllocsPerSolve
		mark := "ok"
		if ba > 0 && ca > ba*(1+*threshold) && ca > ba+1 {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %-8s base %7.1f    now %7.1f    %s\n", "lp_micro", "allocs", ba, ca, mark)
	}

	// Fastpath gate: compiled flow-classification latency and its zero-alloc
	// guarantee. Phases in like lp_micro — baselines recorded before the
	// section existed skip it. The interpreted side and the speedup ratio
	// are informational: the compiled number is what flow arrivals pay.
	switch {
	case base.Fastpath == nil:
		fmt.Println("fastpath      baseline has no fastpath section; gate skipped")
	case cand.Fastpath == nil:
		fmt.Println("fastpath      candidate has no fastpath section; gate skipped")
	default:
		bf, cf := base.Fastpath, cand.Fastpath
		delta := cf.CompiledNanosPerLookup - bf.CompiledNanosPerLookup
		rel := 0.0
		if bf.CompiledNanosPerLookup > 0 {
			rel = delta / bf.CompiledNanosPerLookup
		}
		mark := "ok"
		if rel > *threshold && delta > float64(fastFloor.Nanoseconds()) {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %-8s base %7.1fns  now %7.1fns  (%+.1f%%)  %s\n",
			"fastpath", "compiled", bf.CompiledNanosPerLookup, cf.CompiledNanosPerLookup, 100*rel, mark)
		fmt.Printf("%-12s %-8s base %7.0fx   now %7.0fx   (informational)\n",
			"fastpath", "speedup", bf.Speedup, cf.Speedup)
		// Zero allocations is a hard property, not a timing: any steady-state
		// allocation on the compiled path is a regression outright.
		mark = "ok"
		if cf.CompiledAllocsPerLookup > 0.01 {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %-8s base %7.2f    now %7.2f    %s\n",
			"fastpath", "allocs", bf.CompiledAllocsPerLookup, cf.CompiledAllocsPerLookup, mark)
	}

	// Delta gate: incremental-reconfiguration event cost. The latency
	// comparison phases in like lp_micro — it needs a baseline with the
	// section — but the -deltamin speedup floor is a hard property of the
	// delta layer itself (sub-model cost must scale with the change, not
	// the network), so it applies to any candidate carrying the section,
	// baseline or not. Cwix is the larger fig11 fabric; the Ans speedups
	// are informational.
	if cand.Delta == nil {
		fmt.Println("delta         candidate has no delta section; gate skipped")
	} else {
		baseDelta := map[string]experiments.DeltaBenchEntry{}
		if base.Delta != nil {
			for _, e := range base.Delta.Entries {
				baseDelta[e.Topology+"/"+e.Event] = e
			}
		} else {
			fmt.Println("delta         baseline has no delta section; latency gate skipped")
		}
		for _, c := range cand.Delta.Entries {
			key := c.Topology + "/" + c.Event
			if b, ok := baseDelta[key]; ok {
				delta := c.DeltaMillis - b.DeltaMillis
				rel := 0.0
				if b.DeltaMillis > 0 {
					rel = delta / b.DeltaMillis
				}
				mark := "ok"
				if rel > *threshold && delta > float64(deltaFloor.Milliseconds()) {
					mark = "REGRESSION"
					regressions++
				}
				fmt.Printf("%-12s %-13s base %7.1fms  now %7.1fms  (%+.1f%%)  %s\n",
					"delta", key, b.DeltaMillis, c.DeltaMillis, 100*rel, mark)
			}
			mark := "ok"
			var gated string
			if c.Topology == "Cwix" {
				if c.Speedup < *deltaMin {
					mark = "REGRESSION"
					regressions++
				}
				gated = fmt.Sprintf("(floor %.1fx)  %s", *deltaMin, mark)
			} else {
				gated = "(informational)"
			}
			fmt.Printf("%-12s %-13s speedup %7.1fx  affected %.1f of %d  %s\n",
				"delta", key, c.Speedup, c.AffectedPolicies, c.Policies, gated)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%% + %s\n",
			regressions, *threshold*100, *floor)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
