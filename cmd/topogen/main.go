// Command topogen emits the synthetic evaluation topologies (the Topology
// Zoo substitutes of DESIGN.md) as JSON or Graphviz DOT.
//
// Usage:
//
//	topogen -list
//	topogen -name Internode            # JSON to stdout
//	topogen -name Ans -format dot
//	topogen -name custom -nodes 40 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"janus/internal/topo"
)

func main() {
	name := flag.String("name", "", "topology name (a Zoo name, or anything with -nodes)")
	nodes := flag.Int("nodes", 0, "node count for a custom topology")
	seed := flag.Int64("seed", 1, "seed for a custom topology")
	format := flag.String("format", "json", "output format: json or dot")
	list := flag.Bool("list", false, "list built-in topologies and exit")
	flag.Parse()

	if *list {
		for _, spec := range topo.ZooSpecs {
			fmt.Printf("%-12s %d nodes\n", spec.Name, spec.Nodes)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "topogen: -name is required (use -list)")
		os.Exit(1)
	}

	var t *topo.Topology
	if *nodes > 0 {
		t = topo.Synthetic(*name, *nodes, *seed)
	} else {
		var err error
		t, err = topo.Zoo(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
	case "dot":
		fmt.Print(t.DOT())
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown format %q\n", *format)
		os.Exit(1)
	}
}
