// Command janus composes intent policy graphs and configures them onto a
// topology, printing the resulting path assignments and link usage.
//
// Usage:
//
//	janus -topo topology.json -policies p1.policy,p2.json [-paths 5] [-period 0] [-temporal]
//
// The topology file uses the internal/topo JSON schema (see cmd/topogen to
// generate examples). Policy files ending in .json use the policy-graph
// JSON schema; any other extension is parsed as the intent language
// (internal/intent).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"janus"
	"janus/internal/intent"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "janus:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("janus", flag.ContinueOnError)
	topoPath := fs.String("topo", "", "topology JSON file (required)")
	policyPaths := fs.String("policies", "", "comma-separated policy graph JSON files (required)")
	candidatePaths := fs.Int("paths", 5, "candidate paths per endpoint pair (0 = full ILP)")
	period := fs.Int("period", 0, "hour of day to configure (ignored with -temporal)")
	temporal := fs.Bool("temporal", false, "run the greedy temporal chain over all periods")
	seed := fs.Int64("seed", 1, "random seed for candidate selection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoPath == "" || *policyPaths == "" {
		fs.Usage()
		return fmt.Errorf("-topo and -policies are required")
	}

	var tp janus.Topology
	if err := readJSON(*topoPath, &tp); err != nil {
		return err
	}
	// Decoding checks structure only; input topologies must also be
	// connected (a disconnected one is legal solely as recovered runtime
	// state after a quarantine).
	if err := tp.Validate(); err != nil {
		return fmt.Errorf("%s: %w", *topoPath, err)
	}
	var graphs []*janus.PolicyGraph
	for _, path := range strings.Split(*policyPaths, ",") {
		path = strings.TrimSpace(path)
		if strings.HasSuffix(path, ".json") {
			var g janus.PolicyGraph
			if err := readJSON(path, &g); err != nil {
				return err
			}
			graphs = append(graphs, &g)
			continue
		}
		// Anything else is the intent language (see internal/intent).
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		g, err := intent.Parse(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		graphs = append(graphs, g)
	}

	composed, err := janus.Compose(nil, graphs...)
	if err != nil {
		return err
	}
	printf(out, "composed %d policies from %d graphs\n", len(composed.Policies), len(graphs))
	for _, c := range composed.Conflicts {
		printf(out, "conflict: %s\n", c)
	}

	conf, err := janus.NewConfigurator(&tp, composed, janus.Config{
		CandidatePaths: *candidatePaths,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	if *temporal {
		tr, err := conf.ConfigureTemporal()
		if err != nil {
			return err
		}
		printf(out, "periods: %v, total configured: %d, cross-period path changes: %d\n",
			tr.Periods, tr.TotalConfigured, tr.PathChanges)
		for _, res := range tr.Results {
			printResult(out, composed, res)
		}
		return nil
	}
	res, err := conf.Configure(*period)
	if err != nil {
		return err
	}
	printResult(out, composed, res)
	return nil
}

func printResult(out *os.File, g *janus.ComposedGraph, res *janus.Result) {
	printf(out, "\n=== period %dh: %d/%d policies configured (objective %.4f, %v) ===\n",
		res.Period, res.SatisfiedCount(), len(res.Configured), res.Objective, res.Stats.Duration)
	ids := make([]int, 0, len(res.Configured))
	for pid := range res.Configured {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for _, pid := range ids {
		p := g.PolicyByID(pid)
		status := "VIOLATED"
		if res.Configured[pid] {
			status = "configured"
		}
		printf(out, "policy %d (%s -> %s): %s\n", pid, p.Src.Name, p.Dst.Name, status)
	}
	for _, a := range res.Assignments {
		role := "hard"
		if a.Role != 0 {
			role = "reserved"
		}
		printf(out, "  p%d %s->%s [%s] path %s (%.1f Mbps)\n",
			a.Policy, a.Src, a.Dst, role, a.Path.Key(), a.BW)
	}
	if bn := res.Bottlenecks(); len(bn) > 0 {
		printf(out, "bottleneck links (by shadow price):\n")
		for i, l := range bn {
			if i >= 5 {
				break
			}
			printf(out, "  %d->%d: %.1f/%.1f Mbps reserved, shadow price %.4f\n",
				l.From, l.To, l.Reserved, l.Capacity, l.ShadowPrice)
		}
	}
}

// printf writes best-effort display output, visibly discarding the write
// error: there is nothing useful to do when stdout is gone.
func printf(out *os.File, format string, args ...any) {
	_, _ = fmt.Fprintf(out, format, args...)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	return nil
}
