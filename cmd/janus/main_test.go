package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const tinyTopo = `{
  "name": "tiny",
  "nodes": [
    {"id": 0, "name": "s1", "kind": 0},
    {"id": 1, "name": "s2", "kind": 0},
    {"id": 2, "name": "lb1", "kind": 1, "nf": "LB"}
  ],
  "links": [
    {"from": 0, "to": 1, "capacityMbps": 100},
    {"from": 1, "to": 0, "capacityMbps": 100},
    {"from": 0, "to": 2, "capacityMbps": 1000},
    {"from": 2, "to": 0, "capacityMbps": 1000},
    {"from": 2, "to": 1, "capacityMbps": 1000},
    {"from": 1, "to": 2, "capacityMbps": 1000}
  ],
  "endpoints": [
    {"name": "m1", "attach": 0, "labels": ["Marketing"]},
    {"name": "w1", "attach": 1, "labels": ["Web"]}
  ]
}`

const tinyPolicy = `graph web-qos
Marketing -> Web: match tcp/80; chain LB; minbw 20Mbps
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, out)
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunIntentPolicy(t *testing.T) {
	topoPath := writeTemp(t, "t.json", tinyTopo)
	polPath := writeTemp(t, "web.policy", tinyPolicy)
	out, err := captureRun(t, []string{"-topo", topoPath, "-policies", polPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "composed 1 policies") {
		t.Errorf("output missing composition summary:\n%s", out)
	}
	if !strings.Contains(out, "1/1 policies configured") {
		t.Errorf("output missing configuration summary:\n%s", out)
	}
	if !strings.Contains(out, "m1->w1") {
		t.Errorf("output missing assignment:\n%s", out)
	}
}

func TestRunTemporalFlag(t *testing.T) {
	topoPath := writeTemp(t, "t.json", tinyTopo)
	polPath := writeTemp(t, "web.policy", "graph g\nMarketing -> Web: minbw 10Mbps; when time 9-18\nMarketing -> Web: minbw 5Mbps; when time 18-9\n")
	out, err := captureRun(t, []string{"-topo", topoPath, "-policies", polPath, "-temporal"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "periods: [0 9 18]") {
		t.Errorf("output missing period list:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	topoPath := writeTemp(t, "t.json", tinyTopo)
	if _, err := captureRun(t, []string{}); err == nil {
		t.Error("missing flags should error")
	}
	if _, err := captureRun(t, []string{"-topo", topoPath, "-policies", "/nope.policy"}); err == nil {
		t.Error("missing policy file should error")
	}
	badPol := writeTemp(t, "bad.policy", "not a graph")
	if _, err := captureRun(t, []string{"-topo", topoPath, "-policies", badPol}); err == nil {
		t.Error("invalid policy file should error")
	}
	badTopo := writeTemp(t, "bad.json", "{")
	polPath := writeTemp(t, "web.policy", tinyPolicy)
	if _, err := captureRun(t, []string{"-topo", badTopo, "-policies", polPath}); err == nil {
		t.Error("invalid topology should error")
	}
}
