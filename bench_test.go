// Benchmarks regenerating the Janus paper's evaluation (§7): one benchmark
// per table and figure, plus ablation benches for the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure/table bench executes the corresponding experiment harness at
// a reduced scale (see internal/experiments); cmd/janusbench prints the
// full tables. Ablation benches isolate one mechanism each so the cost of
// a design choice is measurable in isolation.
package janus_test

import (
	"fmt"
	"testing"
	"time"

	"janus/internal/core"
	"janus/internal/experiments"
	"janus/internal/lp"
	"janus/internal/milp"
	"janus/internal/workload"
)

func benchParams() experiments.Params {
	// Reduced scale and a tight per-solve cap: `go test -bench=.` runs
	// every experiment once; cmd/janusbench is the tool for larger sweeps.
	return experiments.Params{Scale: 0.4, Seed: 1, Runs: 1, TimeLimit: 5 * time.Second}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("experiment %s missing", name)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 11: runtime vs number of policies (ILP vs Janus, 4 topologies).
func BenchmarkFig11PolicySweep(b *testing.B) { runExperiment(b, "fig11") }

// Fig 12: runtime vs endpoints per policy.
func BenchmarkFig12EndpointSweep(b *testing.B) { runExperiment(b, "fig12") }

// Fig 13: optimality gap vs endpoints per policy.
func BenchmarkFig13OptimalityGap(b *testing.B) { runExperiment(b, "fig13") }

// Tables 3 and 4: candidate-path count vs gap and runtime reduction.
func BenchmarkTable34PathSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table34(benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 14: warm start under endpoint churn.
func BenchmarkFig14WarmStart(b *testing.B) { runExperiment(b, "fig14") }

// Fig 15: stateful-policy λ sweep.
func BenchmarkFig15StatefulLambda(b *testing.B) { runExperiment(b, "fig15") }

// Table 5: temporal greedy chain vs independent re-solve.
func BenchmarkTable5TemporalGreedy(b *testing.B) { runExperiment(b, "table5") }

// Fig 16: weights as priorities.
func BenchmarkFig16Priorities(b *testing.B) { runExperiment(b, "fig16") }

// Fig 17: bandwidth negotiation N/K sweeps.
func BenchmarkFig17Negotiation(b *testing.B) { runExperiment(b, "fig17") }

// benchWorkload builds a mid-size workload once per benchmark.
func benchWorkload(b *testing.B, spec workload.Spec) *workload.Workload {
	b.Helper()
	w, err := workload.Generate("Internode", spec)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// configureOnce runs one period-0 configuration.
func configureOnce(b *testing.B, w *workload.Workload, cfg core.Config) *core.Result {
	b.Helper()
	conf, err := core.New(w.Topo, w.Graph, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := conf.Configure(0)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// Ablation: candidate-path count k (the §5.2 heuristic knob, Tables 3–4).
func BenchmarkAblationPaths(b *testing.B) {
	for _, k := range []int{1, 2, 5, 10, 0} {
		name := fmt.Sprintf("k=%d", k)
		if k == 0 {
			name = "k=all(ILP)"
		}
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, workload.Spec{Policies: 15, EndpointsPerPolicy: 2, Seed: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				configureOnce(b, w, core.Config{CandidatePaths: k, Seed: 2})
			}
		})
	}
}

// Ablation: random vs shortest-first candidate selection. Random selection
// is the paper's choice for edge-disjointedness; shortest-first concentrates
// load on few links.
func BenchmarkAblationSelection(b *testing.B) {
	for _, shortest := range []bool{false, true} {
		name := "random"
		if shortest {
			name = "shortest-first"
		}
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, workload.Spec{Policies: 15, EndpointsPerPolicy: 2, Seed: 3})
			sat := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := configureOnce(b, w, core.Config{CandidatePaths: 5, Seed: 3, ShortestFirst: shortest})
				sat = res.SatisfiedCount()
			}
			b.ReportMetric(float64(sat), "policies-satisfied")
		})
	}
}

// Ablation: warm vs cold start after small endpoint churn (Fig 14's
// mechanism in isolation).
func BenchmarkAblationWarmVsCold(b *testing.B) {
	w := benchWorkload(b, workload.Spec{Policies: 15, EndpointsPerPolicy: 2, Seed: 4})
	conf, err := core.New(w.Topo, w.Graph, core.Config{CandidatePaths: 5, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	initial, err := conf.Configure(0)
	if err != nil {
		b.Fatal(err)
	}
	w.MoveRandomEndpoints(newRand(5), 2)
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := conf.Reconfigure(initial); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := conf.Configure(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: soft reservations of stateful escalation paths on/off (§5.3).
func BenchmarkAblationReservations(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "reserved"
		if disabled {
			name = "unreserved"
		}
		b.Run(name, func(b *testing.B) {
			w := benchWorkload(b, workload.Spec{Policies: 10, EndpointsPerPolicy: 2, StatefulEdges: 2, Seed: 6})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				configureOnce(b, w, core.Config{CandidatePaths: 5, Seed: 6, DisableReservations: disabled})
			}
		})
	}
}

// Ablation: branching rule in the branch-and-bound (most-fractional vs
// pseudocost).
func BenchmarkAblationBranching(b *testing.B) {
	for _, rule := range []struct {
		name string
		rule milp.BranchRule
	}{{"most-fractional", milp.MostFractional}, {"pseudocost", milp.PseudoCost}} {
		b.Run(rule.name, func(b *testing.B) {
			w := benchWorkload(b, workload.Spec{Policies: 15, EndpointsPerPolicy: 2, Seed: 7})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				configureOnce(b, w, core.Config{CandidatePaths: 5, Seed: 7, Branching: rule.rule})
			}
		})
	}
}

// Ablation: the raw simplex on a representative LP relaxation (the eta-
// update/reinversion engine under the whole system).
func BenchmarkAblationSimplex(b *testing.B) {
	build := func() *lp.Problem {
		rng := newRand(8)
		p := lp.NewProblem()
		n, m := 400, 120
		for i := 0; i < n; i++ {
			p.AddVariable(0, 1, rng.Float64())
		}
		for r := 0; r < m; r++ {
			terms := make([]lp.Term, 0, 12)
			for j := 0; j < 12; j++ {
				terms = append(terms, lp.Term{Var: rng.Intn(n), Coef: 1 + rng.Float64()*20})
			}
			if _, err := p.AddConstraint(lp.LE, 40, terms); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

// Ablation: temporal greedy chain vs joint optimization (Eqn 9) on a tiny
// instance — the joint form explodes with periods (the paper's never
// finished).
func BenchmarkAblationJointVsGreedy(b *testing.B) {
	mk := func() *core.Configurator {
		w, err := workload.Generate("Ans", workload.Spec{
			Policies: 4, EndpointsPerPolicy: 1, TimePeriods: 2, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		conf, err := core.New(w.Topo, w.Graph, core.Config{CandidatePaths: 3, Seed: 9, TimeLimit: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		return conf
	}
	b.Run("greedy", func(b *testing.B) {
		conf := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conf.ConfigureTemporal(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("joint", func(b *testing.B) {
		conf := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conf.ConfigureTemporalJoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
