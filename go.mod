module janus

go 1.22
