GO ?= go

.PHONY: all build vet lint test test-race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/januslint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# check is the full correctness gate CI runs: compile, vet, januslint,
# and the test suite under the race detector.
check: build vet lint test-race
