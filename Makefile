GO ?= go

.PHONY: all build vet lint test test-race chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is self-hosting: ./... includes internal/analysis, internal/analysis/cfg,
# and cmd/januslint, so the analyzers must pass their own checks. Any
# non-suppressed finding exits non-zero and fails check/CI.
lint:
	$(GO) run ./cmd/januslint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# chaos replays the seeded fault-injection soak (random op failures, a
# mid-update switch crash, a link flap) under the race detector, asserting
# the self-audit stays clean and failed updates roll back exactly.
chaos:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/runtime/ -v

# check is the full correctness gate CI runs: compile, vet, januslint,
# and the test suite under the race detector.
check: build vet lint test-race
