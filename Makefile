GO ?= go

.PHONY: all build vet lint lint-sarif test test-race chaos crashsoak fastsoak check bench bench-lp benchdiff fuzz fuzz-fastpath difftest deltadiff

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is self-hosting: ./... includes internal/analysis, internal/analysis/cfg,
# and cmd/januslint, so the analyzers must pass their own checks. Any
# non-suppressed finding exits non-zero and fails check/CI.
lint:
	$(GO) run ./cmd/januslint ./...

# lint-sarif writes the same findings as a SARIF 2.1.0 log for CI code
# scanning. The log is produced even when findings exist (januslint exits 1
# then; CI uploads the file and fails the job on the plain lint step), so
# tolerate the exit status here and only fail if no log was written.
lint-sarif:
	$(GO) run ./cmd/januslint -sarif ./... > januslint.sarif || true
	@test -s januslint.sarif

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# chaos replays the seeded fault-injection soak (random op failures, a
# mid-update switch crash, a link flap) under the race detector, asserting
# the self-audit stays clean and failed updates roll back exactly.
chaos:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/runtime/ -v

# crashsoak sweeps every injected crash point of the durability layer: for
# each counted disk operation (journal write, fsync, snapshot rename) the
# soak re-runs the event schedule with a crash armed at that point, restarts
# from disk, and asserts recovery is audit-clean and byte-identical to a
# never-crashed reference runtime. The warm-restart tests assert graceful
# shutdown recovers from the snapshot with zero replayed records.
crashsoak:
	$(GO) test -race -count=1 -run 'TestCrashSoak|TestWarmRestartRecoversWithZeroReplay|TestCrashSweepEveryPoint|TestCrashDuringSnapshotRename|TestDurableRestartRoundTrip' \
		./internal/store/ ./internal/runtime/ ./internal/server/ -v

# fastsoak is the swap-under-load race soak for the compiled
# flow-classification fast path: reader goroutines hammer compiled lookups
# while the runtime reconfigures, rolls back, and escalates — every swap
# republishes the structure atomically. Run under -race; every observed
# path is replayed post-hoc against the rule set of the generation that
# served it, and the generation counter must be monotone.
fastsoak:
	$(GO) test -race -count=1 -run TestFastpathSwapSoak ./internal/runtime/ -v

# bench regenerates the committed parallel-solver baseline, including the
# lp_micro simplex microbenchmark section benchdiff gates. Run on the
# machine whose numbers BENCH.json should reflect, then commit the file.
bench:
	$(GO) run ./cmd/janusbench -json BENCH.json

# bench-lp runs the simplex microbenchmarks directly (cold solve and the
# branch-and-bound warm re-solve pattern) with allocation counts.
bench-lp:
	$(GO) test -run xxx -bench 'BenchmarkLP' -benchmem ./internal/lp/

# benchdiff re-measures and fails on a >20% (and >250ms absolute) solve-time
# regression against the committed BENCH.json. Speedup ratios are reported
# but not gated (they depend on the host's core count).
benchdiff:
	$(GO) run ./cmd/janusbench -json BENCH.candidate.json
	$(GO) run ./cmd/benchdiff -baseline BENCH.json -candidate BENCH.candidate.json
	rm -f BENCH.candidate.json

# difftest runs the differential solver harness: seeded random MILPs plus
# corpus replays of real period models, serial vs parallel, re-verified
# feasible. This is the permanent gate for solver changes.
difftest:
	$(GO) test -race -count=1 ./internal/milp/difftest/ -run TestDifferential -v
	$(GO) test -race -count=1 ./internal/core/ -run TestDifferentialCorpus -v

# deltadiff runs the incremental-reconfiguration differential harness under
# the race detector: twin runtimes (delta on vs off) replay seeded event
# schedules — moves, link failures/restores, period advances, escalations,
# injected faults — and every installed result, metric-visible satisfaction
# count, and journal replay must match byte-for-byte. This is the permanent
# gate for delta-solve changes, alongside the unit/edge-case suites.
deltadiff:
	$(GO) test -race -count=1 -run 'TestDeltaDiff' ./internal/runtime/ -v
	$(GO) test -race -count=1 -run 'TestDelta|TestBuildDepIndex|TestUpdateGraphInvalidatesDepIndex|TestRestoreRebuildsDepIndex' ./internal/core/ ./internal/runtime/
	$(GO) test -race -count=1 -run 'TestInvalidateLink' ./internal/paths/

# fuzz gives the LP fuzzer a short budget beyond its checked-in seed corpus;
# CI runs this as a smoke, leave it running locally to hunt.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzLPSolve -fuzztime=$(FUZZTIME) ./internal/lp/

# fuzz-fastpath runs the compiled-vs-interpreted differential fuzzer:
# random topologies and rule sets, with every (src, dst, proto, port) probe
# required to return identical paths and errors from both lookups.
fuzz-fastpath:
	$(GO) test -fuzz=FuzzCompiledLookup -fuzztime=$(FUZZTIME) ./internal/fastpath/

# check is the full correctness gate CI runs: compile, vet, januslint,
# and the test suite under the race detector.
check: build vet lint test-race
