package janus_test

import "math/rand"

// newRand returns a seeded RNG for benchmark-local randomness.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
