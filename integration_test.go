package janus_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"janus/internal/check"
	"janus/internal/core"
	"janus/internal/dataplane"
	"janus/internal/policy"
	"janus/internal/runtime"
	"janus/internal/topo"
	"janus/internal/workload"
)

// TestPipelineInvariants runs the full pipeline — generate workload,
// configure, compile to rules, apply to the dataplane — on several
// topologies and asserts the system-wide invariants that must hold for any
// valid Janus configuration:
//
//  1. Group atomicity: a configured policy has a hard path for every
//     endpoint pair; a violated policy has none.
//  2. Capacity: the sum of reservations on every directed link stays within
//     capacity (Eqn 3), and the dataplane's promised queue bandwidth
//     agrees.
//  3. Chain enforcement: every forwarding walk traverses its edge's NF
//     kinds in order.
//  4. Determinism: the same seed reproduces the same satisfied set.
func TestPipelineInvariants(t *testing.T) {
	for _, topoName := range []string{"Ans", "Cwix", "Internode"} {
		topoName := topoName
		t.Run(topoName, func(t *testing.T) {
			w, err := workload.Generate(topoName, workload.Spec{
				Policies: 12, EndpointsPerPolicy: 2, StatefulEdges: 1, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			conf, err := core.New(w.Topo, w.Graph, core.Config{
				CandidatePaths: 5, Seed: 99, MaxNodes: 2000, TimeLimit: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := conf.Configure(0)
			if err != nil {
				t.Fatal(err)
			}
			if res.SatisfiedCount() == 0 {
				t.Fatal("no policies satisfied; workload degenerate")
			}

			// Invariant 1: group atomicity.
			for _, p := range w.Graph.Policies {
				pairs := pairsOf(w.Topo, p.Src.Labels, p.Dst.Labels)
				hardPaths := 0
				for _, a := range res.Assignments {
					if a.Policy == p.ID && a.Role == core.HardEdge {
						hardPaths++
					}
				}
				if res.Configured[p.ID] && hardPaths != len(pairs) {
					t.Errorf("policy %d configured but has %d/%d pair paths",
						p.ID, hardPaths, len(pairs))
				}
				if !res.Configured[p.ID] && hardPaths != 0 {
					t.Errorf("policy %d violated but has %d hard paths", p.ID, hardPaths)
				}
			}

			// Invariant 2: link capacity.
			for _, l := range res.Links {
				if l.Reserved > l.Capacity+1e-6 {
					t.Errorf("link %d->%d over capacity: %g > %g",
						l.From, l.To, l.Reserved, l.Capacity)
				}
			}

			// Apply to the dataplane and re-check from the rules side.
			net := dataplane.NewNetwork(w.Topo)
			rules := dataplane.CompileRules(w.Topo, dataplane.NewGraphAdapter(w.Graph), res)
			net.Apply(rules, res.Assignments)
			if over := net.OverSubscribed(); len(over) != 0 {
				t.Errorf("dataplane oversubscribed: %v", over)
			}
			// The independent auditor must agree the configuration is clean.
			if violations := check.Audit(w.Topo, w.Graph, net, res, 0, nil); len(violations) != 0 {
				t.Errorf("audit violations: %v", violations)
			}

			// Invariant 3: chain enforcement end to end.
			for _, a := range res.Assignments {
				if a.Role != core.HardEdge {
					continue
				}
				p := w.Graph.PolicyByID(a.Policy)
				edge := p.AllEdges()[a.EdgeIdx]
				proto, port := policy.TCP, 80
				if !edge.Match.MatchAll() && len(edge.Match.Ports) > 0 {
					proto, port = edge.Match.Proto, edge.Match.Ports[0]
				}
				walk, err := net.Lookup(a.Src, a.Dst, proto, port)
				if err != nil {
					t.Errorf("policy %d %s->%s: %v", a.Policy, a.Src, a.Dst, err)
					continue
				}
				prog := 0
				for _, n := range walk {
					if prog < len(edge.Chain) && w.Topo.Nodes[n].Kind == topo.NFBox &&
						w.Topo.Nodes[n].NF == edge.Chain[prog] {
						prog++
					}
				}
				if prog != len(edge.Chain) {
					t.Errorf("policy %d %s->%s: chain %v not traversed in %v",
						a.Policy, a.Src, a.Dst, edge.Chain, walk)
				}
			}

			// Invariant 4: determinism.
			w2, err := workload.Generate(topoName, workload.Spec{
				Policies: 12, EndpointsPerPolicy: 2, StatefulEdges: 1, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			conf2, err := core.New(w2.Topo, w2.Graph, core.Config{
				CandidatePaths: 5, Seed: 99, MaxNodes: 2000, TimeLimit: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			res2, err := conf2.Configure(0)
			if err != nil {
				t.Fatal(err)
			}
			for pid, ok := range res.Configured {
				if res2.Configured[pid] != ok {
					t.Errorf("determinism: policy %d differs across identical runs", pid)
				}
			}
		})
	}
}

// TestChurnSequence drives a runtime through a randomized sequence of
// dynamics — moves, membership changes, temporal ticks, link failures —
// asserting after every event that the dataplane verifies and capacity
// holds. This is the failure-injection test for the §2.2 dynamics.
func TestChurnSequence(t *testing.T) {
	w, err := workload.Generate("Ans", workload.Spec{
		Policies: 8, EndpointsPerPolicy: 2, TimePeriods: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(w.Topo, w.Graph, core.Config{
		CandidatePaths: 5, Seed: 42, MaxNodes: 2000, TimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := runtime.New(context.Background(), conf)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		if problems := rt.Verify(); len(problems) != 0 {
			t.Fatalf("after %s: %v", step, problems)
		}
		if over := rt.Network().OverSubscribed(); len(over) != 0 {
			t.Fatalf("after %s: oversubscribed %v", step, over)
		}
	}
	check("initial install")

	switches := w.Topo.NodesOfKind(topo.Switch, "")
	// Endpoint mobility.
	ep := w.Topo.Endpoints[0].Name
	if err := rt.MoveEndpoint(context.Background(), ep, switches[len(switches)/2]); err != nil {
		t.Fatal(err)
	}
	check("endpoint move")

	// Membership change.
	if err := rt.RelabelEndpoint(context.Background(), ep, "Visitors"); err != nil {
		t.Fatal(err)
	}
	check("membership change")

	// Temporal transitions through the full day.
	for _, h := range []int{8, 16, 23} {
		if err := rt.AdvanceTo(context.Background(), h); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("advance to %dh", h))
	}

	// Link failure on a link some flow uses (pick from current
	// assignments; skip if none found).
	for _, a := range rt.Current().Assignments {
		links := a.Path.Links()
		if len(links) == 0 {
			continue
		}
		l := links[0]
		if err := rt.FailLink(context.Background(), l[0], l[1]); err != nil {
			t.Fatal(err)
		}
		check("link failure")
		break
	}

	m := rt.Metrics()
	if m.Reconfigurations == 0 || m.RulesInstalled == 0 {
		t.Errorf("churn sequence should have reconfigured: %+v", m)
	}
}

// TestTemporalChainVsIndependentIntegration checks the Table 5 property on
// a real workload: the greedy chain never causes more cross-period path
// changes than the independent baseline.
func TestTemporalChainVsIndependentIntegration(t *testing.T) {
	w, err := workload.Generate("Ans", workload.Spec{
		Policies: 10, EndpointsPerPolicy: 2, TimePeriods: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := core.New(w.Topo, w.Graph, core.Config{
		CandidatePaths: 5, Seed: 5, MaxNodes: 2000, TimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := conf.ConfigureTemporal()
	if err != nil {
		t.Fatal(err)
	}
	indep, err := conf.ConfigureTemporalIndependent()
	if err != nil {
		t.Fatal(err)
	}
	if greedy.PathChanges > indep.PathChanges {
		t.Errorf("greedy chain has MORE path changes (%d) than independent (%d)",
			greedy.PathChanges, indep.PathChanges)
	}
	if greedy.TotalConfigured == 0 {
		t.Error("greedy chain configured nothing")
	}
}

// pairsOf mirrors the configurator's endpoint-pair derivation for
// assertions.
func pairsOf(tp *topo.Topology, srcLabels, dstLabels []string) [][2]string {
	srcs := tp.EndpointsMatching(policy.NewEPG("s", srcLabels...))
	dsts := tp.EndpointsMatching(policy.NewEPG("d", dstLabels...))
	var out [][2]string
	for _, s := range srcs {
		for _, d := range dsts {
			if s != d {
				out = append(out, [2]string{s, d})
			}
		}
	}
	return out
}
